"""Crash recovery: replay a control-plane journal and resume the run.

The counterpart to :mod:`repro.core.journal`.  Given a WAL left behind
by a crashed control tier, :func:`resume_run`

1. validates the header (schema version, script hash) and rebuilds the
   exact :class:`~repro.common.config.SystemConfig` the run used;
2. builds a *fresh* controller/request-handler/verifier stack and
   re-stages the journal's input data-sets into its trusted DFS;
3. restores the control-tier state captured by the last fsync'd
   ``attempt_end`` snapshot — suspicion levels, fault-analyzer sets,
   evictions, quarantine — the last *settled attempt boundary*;
4. replays every fsync'd ``commit`` and ``checkpoint`` record
   (including ones from the crashed, unfinished attempt) into the DFS:
   committed VERIFIED jobs are reused, never re-executed — checkpoints
   are verdict-time commits, so a crash *mid-attempt* resumes after the
   last verified sub-graph rather than rerunning the whole closure;
5. re-prepares the script with the *recorded* verification points and
   hands a :class:`~repro.core.journal.ResumeState` to
   :meth:`~repro.core.controller.ClusterBFTController.resume_assured`,
   which re-enters the rerun-escalation loop for the unsettled sids.

A journal that already ends in ``run_end`` is *complete*: the recorded
result is returned without executing anything.

What resumption guarantees — and what it does not
-------------------------------------------------
An assured run's published outputs are the verified (digest-quorum +
content-cross-checked) computation results, which are a pure function
of the script and its inputs.  A resumed run therefore publishes
**byte-identical outputs** to the uninterrupted run with the same seed
(the chaos harness' ``DUR1`` invariant).  Latency, attempt counts and
scheduling detail of re-executed attempts may differ: the resumed
controller starts fresh RNG streams, so the crashed attempt's partial
work is re-simulated, not replayed event-for-event.

One WAL describes one assured run.  The caller must supply the same
fault plan the original run used (fault plans are an experiment input,
not journaled state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.records import Record
from repro.core import journal as wal
from repro.core.audit import TORN_TAIL
from repro.core.controller import ClusterBFTController, ScriptResult
from repro.core.fault_analyzer import FaultAnalyzer
from repro.core.request_handler import RequestHandler
from repro.core.suspicion import NodeSuspicion
from repro.faults.injection import FaultPlan
from repro.mapreduce.metrics import RunMetrics
from repro.mapreduce.scheduler import TaskScheduler
from repro.telemetry import Telemetry

#: Record kinds :func:`resume_run` deliberately does NOT replay.  The
#: journal's recovery model restores the last *settled attempt
#: boundary* (``attempt_end`` snapshot) and replays fsync'd ``commit``
#: records; everything finer-grained is a marker whose effects are
#: either folded into the next snapshot (digests, verdicts, faults,
#: analyzer conclusions, evictions, quarantine) or meta (``resume``
#: records mark prior recoveries).  Declaring them here keeps the
#: WAL-coverage lint (WAL001) honest: deleting a *real* replay branch
#: still trips it, while these stay accounted for.
REPLAY_IGNORED = frozenset(
    {
        wal.ATTEMPT_START,
        wal.DIGEST,
        wal.VERDICT,
        wal.FAULT,
        wal.LATE_FAULT,
        wal.ANALYZER,
        wal.EVICTION,
        wal.QUARANTINE,
        wal.RESUME,
    }
)


@dataclass
class RecoveredRun:
    """What :func:`resume_run` hands back."""

    result: ScriptResult
    #: The controller that finished the run — ``None`` when the journal
    #: was already complete (nothing was executed).
    controller: ClusterBFTController | None
    warnings: list[str] = field(default_factory=list)
    #: Fsync'd commit records replayed into the fresh DFS (jobs reused,
    #: never re-executed).
    commits_replayed: int = 0
    #: Fsync'd ``checkpoint`` records replayed into the fresh DFS:
    #: verdict-time commits from the crashed attempt
    #: (``ClusterBFTConfig.checkpoints``) — the sub-graphs the rerun
    #: escalation resumes *after* instead of re-executing.
    checkpoints_replayed: int = 0
    #: Attempt index the rerun-escalation loop re-entered at.
    start_attempt: int = 0
    #: True when the journal ended in ``run_end`` (recorded result
    #: returned verbatim, no execution).
    completed: bool = False


def _completed_result(run_end: dict) -> ScriptResult:
    """Reconstruct the recorded result of a finished journal."""
    return ScriptResult(
        script_id=run_end["script_id"],
        assured=run_end["assured"],
        outputs={
            logical: wal.records_from_json(rows)
            for logical, rows in run_end["outputs"].items()
        },
        latency=run_end["latency"],
        attempts=run_end["attempts"],
        metrics=RunMetrics(),
        reused_jobs=run_end["reused"],
        exhausted=run_end["exhausted"],
        # Older journals predate the checkpoint tier.
        checkpoint_commits=run_end.get("checkpoints", 0),
    )


def load_inputs(path: str) -> dict[str, list[Record]]:
    """The input data-sets a journal's header staged (decoded)."""
    records, _ = wal.read_journal(path)
    return {
        dfs_path: wal.records_from_json(rows)
        for dfs_path, rows in records[0]["inputs"].items()
    }


def resume_run(
    path: str,
    fault_plan: FaultPlan | None = None,
    scheduler: TaskScheduler | None = None,
    telemetry: Telemetry | None = None,
    crash_hook=None,
    strict: bool = False,
) -> RecoveredRun:
    """Resume (or report) the run described by the journal at ``path``.

    ``crash_hook`` is re-armed on the reopened journal — the chaos
    harness uses it to crash the control tier *again* mid-recovery.
    With ``strict`` the resumed controller raises
    :class:`~repro.common.errors.VerificationExhausted` when the
    escalation budget runs out.
    """
    records, warnings = wal.read_journal(path)
    header = records[0]
    config = wal.config_from_json(header["config"])

    run_start: dict | None = None
    snapshot: dict | None = None
    commits: list[dict] = []
    checkpoints: list[dict] = []
    reconfigs: list[dict] = []
    run_end: dict | None = None
    for record in records[1:]:
        kind = record["kind"]
        if kind == wal.RUN_START:
            run_start = record
        elif kind == wal.ATTEMPT_END:
            snapshot = record  # the latest settled boundary wins
        elif kind == wal.COMMIT:
            commits.append(record)
        elif kind == wal.CHECKPOINT:
            checkpoints.append(record)
        elif kind == wal.RECONFIG:
            reconfigs.append(record)
        elif kind == wal.RUN_END:
            run_end = record

    if run_end is not None:
        return RecoveredRun(
            result=_completed_result(run_end),
            controller=None,
            warnings=warnings,
            commits_replayed=0,
            completed=True,
        )

    journal = wal.Journal.reopen(
        path, next_seq=records[-1]["seq"] + 1, crash_hook=crash_hook
    )
    controller = ClusterBFTController(
        config=config,
        fault_plan=fault_plan,
        scheduler=scheduler,
        block_bytes=header["block_bytes"],
        telemetry=telemetry,
        journal=journal,
    )
    if journal.torn_bytes_truncated:
        # Crash damage is evidence: the reopen dropped a torn final
        # line — surface how much, in the warnings *and* the audit log.
        warnings.append(
            f"journal tail truncated: dropped {journal.torn_bytes_truncated} "
            "byte(s) of torn final record"
        )
        controller.audit.record(
            controller.loop.now,
            TORN_TAIL,
            path,
            bytes_truncated=journal.torn_bytes_truncated,
        )
    for dfs_path, rows in header["inputs"].items():
        controller.load_input(dfs_path, wal.records_from_json(rows))

    script = header["script"]

    if run_start is None:
        # Crashed before the run even started: nothing to restore —
        # run from scratch on the reopened journal.
        journal.append(wal.RESUME, start_attempt=0, commits_replayed=0)
        result = controller.run_assured(script, strict=strict)
        return RecoveredRun(
            result=result,
            controller=controller,
            warnings=warnings,
        )

    # -- restore the last settled attempt boundary ----------------------
    cfg = config.bft
    resume = wal.ResumeState(
        script_id=run_start["script_id"],
        start_attempt=0,
        attempts_used=0,
        replication=cfg.replication,
        timeout=cfg.verifier_timeout,
    )
    if snapshot is not None:
        resume.start_attempt = snapshot["attempt"] + 1
        resume.attempts_used = snapshot["attempts_used"]
        resume.replication = snapshot["next_replication"]
        resume.timeout = snapshot["next_timeout"]
        resume.verified_jobs = set(snapshot["verified_jobs"])
        resume.verified_ok = set(snapshot["verified_ok"])
        resume.verified_paths = dict(snapshot["verified_paths"])
        resume.reused = snapshot["reused"]
        for node_id, (jobs, faults) in snapshot["suspicion"].items():
            controller.suspicion.nodes[node_id] = NodeSuspicion(
                jobs_executed=jobs, faults_associated=faults
            )
        analyzer = snapshot["analyzer"]
        controller.fault_analyzer = FaultAnalyzer(
            f=cfg.f,
            disjoint=[frozenset(s) for s in analyzer["disjoint"]],
            overlapping=[frozenset(s) for s in analyzer["overlapping"]],
            observations=analyzer["observations"],
            saturated_at=analyzer["saturated_at"],
        )
        for node_id in snapshot["evicted"]:
            if not controller.cluster.node(node_id).excluded:
                controller.cluster.exclude(node_id)
        for node_id in snapshot["quarantined"]:
            if not controller.scheduler.is_quarantined(node_id):
                controller.scheduler.quarantine(node_id)

    # -- replay reconfigurations (region migrations) --------------------
    # Fsync'd before the original controller acted on them, so a crash
    # mid-migration still re-quarantines the degraded region's nodes —
    # the resumed scheduler must not move work *back into* it.  Replay
    # is idempotent with the snapshot's quarantine list (migrations
    # before the last settled boundary are folded into it already).
    for reconfig in reconfigs:
        for node_id in reconfig["nodes"]:
            if not controller.scheduler.is_quarantined(node_id):
                controller.scheduler.quarantine(node_id)

    # -- replay fsync'd commits (even from the crashed attempt) ---------
    for commit in commits:
        content = wal.records_from_json(commit["content"])
        target = commit["target"]
        if controller.dfs.exists(target):
            controller.dfs.delete(target)
        controller.dfs.write_file(target, content)
        resume.verified_jobs.add(commit["job_index"])
        resume.verified_ok.add(commit["job_index"])
        resume.verified_paths[commit["path"]] = target

    # -- replay fsync'd checkpoints (verdict-time commits) --------------
    # Same shape and same idempotent delete-then-write staging as the
    # commit replay above: a checkpoint folded into a later snapshot is
    # simply re-staged to the identical content.  This is how a crash
    # *inside* an attempt resumes from the last verified sub-graph
    # instead of rerunning the whole closure.
    for checkpoint in checkpoints:
        content = wal.records_from_json(checkpoint["content"])
        target = checkpoint["target"]
        if controller.dfs.exists(target):
            controller.dfs.delete(target)
        controller.dfs.write_file(target, content)
        resume.verified_jobs.add(checkpoint["job_index"])
        resume.verified_ok.add(checkpoint["job_index"])
        resume.verified_paths[checkpoint["path"]] = target
        if controller.telemetry.enabled:
            controller.telemetry.tracer.event(
                "checkpoint.restore",
                sid=checkpoint["sid"],
                path=checkpoint["path"],
            )

    journal.append(
        wal.RESUME,
        script_id=resume.script_id,
        start_attempt=resume.start_attempt,
        commits_replayed=len(commits),
        checkpoints_replayed=len(checkpoints),
    )
    journal.run_started = True

    # -- re-prepare with the *recorded* instrumentation -----------------
    handler = RequestHandler(cfg)
    prepared = handler.prepare(
        script,
        controller._input_sizes(controller._to_plan(script)),
        explicit_points=list(run_start["marked"]),
        include_output_points=run_start["include_output_points"],
        compile_options=controller._compile_options(),
    )
    result = controller.resume_assured(prepared, resume, strict=strict)
    return RecoveredRun(
        result=result,
        controller=controller,
        warnings=warnings,
        commits_replayed=len(commits),
        checkpoints_replayed=len(checkpoints),
        start_attempt=resume.start_attempt,
    )
