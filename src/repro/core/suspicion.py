"""Suspicion-level bookkeeping (paper §4.1/§4.2).

"The suspicion level of a node is defined as total number of faults
associated with the node divided by the total number of jobs executed on
the node."  The resource manager evicts nodes whose level exceeds the
administrator threshold; the §6.3 evaluation buckets levels into
Low/Med/High bands, reproduced by :func:`band`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import NodeId

NO_SUSPICION = "none"
LOW = "low"  # 0 < s <= 0.33
MED = "med"  # 0.33 < s <= 0.66
HIGH = "high"  # 0.66 < s <= 1


def band(level: float) -> str:
    """Bucket a suspicion level the way paper Fig. 12/13 does."""
    if level <= 0.0:
        return NO_SUSPICION
    if level <= 0.33:
        return LOW
    if level <= 0.66:
        return MED
    return HIGH


@dataclass
class NodeSuspicion:
    jobs_executed: int = 0
    faults_associated: int = 0

    @property
    def level(self) -> float:
        if self.jobs_executed == 0:
            return 0.0
        return self.faults_associated / self.jobs_executed


@dataclass
class SuspicionTracker:
    """Per-node suspicion levels for the whole cluster."""

    nodes: dict[NodeId, NodeSuspicion] = field(default_factory=dict)

    def _node(self, node_id: NodeId) -> NodeSuspicion:
        if node_id not in self.nodes:
            self.nodes[node_id] = NodeSuspicion()
        return self.nodes[node_id]

    def record_job(self, node_ids: set[NodeId]) -> None:
        """A job replica executed on these nodes (fault or not)."""
        for node_id in node_ids:
            self._node(node_id).jobs_executed += 1

    def record_fault(self, node_ids: set[NodeId]) -> None:
        """A job replica executed on these nodes returned a fault."""
        for node_id in node_ids:
            self._node(node_id).faults_associated += 1

    def clear_faults(self, node_ids: set[NodeId]) -> None:
        """Exonerate nodes (fault analyzer narrowed suspicion elsewhere)."""
        for node_id in node_ids:
            if node_id in self.nodes:
                self.nodes[node_id].faults_associated = 0

    def level(self, node_id: NodeId) -> float:
        return self.nodes.get(node_id, NodeSuspicion()).level

    def band(self, node_id: NodeId) -> str:
        return band(self.level(node_id))

    def suspects(self, minimum: float = 0.0) -> set[NodeId]:
        return {
            node_id
            for node_id, state in self.nodes.items()
            if state.level > minimum
        }

    def band_counts(self) -> dict[str, int]:
        """Histogram of suspicion bands over all known nodes (Fig. 12)."""
        counts = {NO_SUSPICION: 0, LOW: 0, MED: 0, HIGH: 0}
        for state in self.nodes.values():
            counts[band(state.level)] += 1
        return counts

    def over_threshold(self, threshold: float) -> set[NodeId]:
        return {
            node_id
            for node_id, state in self.nodes.items()
            if state.level > threshold
        }
