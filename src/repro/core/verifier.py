"""The output verifier (paper §4.1, §4.2 step 6–7).

Collects :class:`~repro.mapreduce.engine.DigestReport` messages from the
untrusted tier and, per sub-graph id (sid), decides whether at least
``f + 1`` replicas agree on *every* digest — across verification points,
tasks, and incremental chunks (§6.4's approximation accuracy).

Comparison is *offline*: it happens as digests stream in, off the
critical path of the follow-up job, and the verdict event is delayed by
a per-comparison cost so the latency the paper measures ("BFT Execution
also includes the overhead of matching f+1 digests") is accounted.

Outcomes:

* ``VERIFIED`` — a quorum of completed replicas has identical digest
  vectors; the losers (if any) are reported as faulty clusters.
* ``FAILED`` — all expected replicas completed but no quorum exists
  (e.g. r = f+1 with one commission fault).
* ``TIMEOUT`` — the deadline passed first (omission failures or slow
  replicas); the paper reruns the job "with a higher value for r".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common.config import CostModelConfig
from repro.common.ids import NodeId, SubGraphId
from repro.mapreduce.engine import DigestReport
from repro.simulation.events import EventLoop
from repro.telemetry import DISABLED, Telemetry

PENDING = "pending"
VERIFIED = "verified"
FAILED = "failed"
TIMEOUT = "timeout"

#: Fault kinds attributed to losing replicas (paper §2.1 taxonomy).
COMMISSION = "commission"
OMISSION = "omission"

DigestKey = tuple[str, str, int]  # (vp_id, task_label, chunk_index)


@dataclass
class ReplicaFault:
    replica: int
    kind: str  # COMMISSION | OMISSION
    nodes: frozenset[NodeId]


@dataclass
class VerificationOutcome:
    sid: SubGraphId
    status: str
    winners: set[int] = field(default_factory=set)
    faults: list[ReplicaFault] = field(default_factory=list)
    missing_replicas: set[int] = field(default_factory=set)
    comparisons: int = 0
    decided_at: float = 0.0
    first_mismatch_at: float | None = None


class _SidState:
    def __init__(self, sid: SubGraphId, expected: int, quorum: int) -> None:
        self.sid = sid
        self.expected = expected
        self.quorum = quorum
        self.vectors: dict[int, dict[DigestKey, bytes]] = {}
        self.finalized: set[int] = set()
        self.replica_nodes: dict[int, set[NodeId]] = {}
        self.outcome: VerificationOutcome | None = None
        self.comparisons = 0
        self.first_mismatch_at: float | None = None
        self.span = None  # open "verify" span when tracing is enabled


class Verifier:
    """Digest matcher for all sids of one script run."""

    def __init__(
        self,
        loop: EventLoop,
        f: int,
        cost: CostModelConfig,
        timeout: float,
        on_verdict: Callable[[VerificationOutcome], None] | None = None,
        on_late_fault: Callable[[SubGraphId, ReplicaFault], None] | None = None,
        telemetry: Telemetry | None = None,
        span_parent: int | None = None,
    ) -> None:
        self.loop = loop
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._tracer = self.telemetry.tracer
        #: Explicit parent for "verify" spans (the owning attempt span)
        #: so causal chains from commit back to the run root are closed.
        self.span_parent = span_parent
        self.f = f
        self.quorum = f + 1
        self.cost = cost
        self.timeout = timeout
        self.on_verdict = on_verdict
        #: Called for replicas that finish *after* a VERIFIED verdict and
        #: disagree with the winning vector — verification is offline, so
        #: fault attribution keeps going after the output is accepted.
        self.on_late_fault = on_late_fault
        self._sids: dict[SubGraphId, _SidState] = {}
        self.total_comparisons = 0
        self.reports_received = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def register(self, sid: SubGraphId, expected_replicas: int) -> None:
        """Announce a replicated sub-graph; starts its timeout clock."""
        if sid in self._sids:
            return
        state = _SidState(sid, expected_replicas, self.quorum)
        self._sids[sid] = state
        if self._tracer.enabled:
            state.span = self._tracer.begin(
                "verify",
                parent=self.span_parent,
                start=self.loop.now,
                sid=sid,
                expected=expected_replicas,
                timeout=self.timeout,
            )
        self.loop.schedule(
            self.timeout, lambda: self._timeout(sid), label=f"verify-timeout:{sid}"
        )

    def on_report(self, report: DigestReport) -> None:
        """Accumulate one digest message from a worker node."""
        state = self._sids.get(report.sid)
        if state is None:
            return
        if state.outcome is not None and state.outcome.status != VERIFIED:
            return  # sid failed/timed out; a rerun supersedes these
        self.reports_received += 1
        if self._tracer.enabled:
            self.telemetry.metrics.counter(
                "verifier_reports_received", node=report.node_id
            ).inc()
        vector = state.vectors.setdefault(report.replica, {})
        for digest in report.digests:
            key = (report.vp_id, report.task_label, digest.chunk_index)
            vector[key] = digest.value
            # Early (online) mismatch detection against other replicas.
            for other_replica, other_vector in state.vectors.items():
                if other_replica == report.replica:
                    continue
                other_value = other_vector.get(key)
                if other_value is not None:
                    state.comparisons += 1
                    self.total_comparisons += 1
                    if other_value != digest.value and state.first_mismatch_at is None:
                        state.first_mismatch_at = self.loop.now
                        if self._tracer.enabled:
                            self._tracer.event(
                                "verify.mismatch",
                                sid=report.sid,
                                replica=report.replica,
                                other_replica=other_replica,
                                vp_id=report.vp_id,
                                task=report.task_label,
                            )

    def replica_completed(
        self, sid: SubGraphId, replica: int, nodes_used: set[NodeId]
    ) -> None:
        """The execution tracker saw this replica's job finish.  Digest
        messages trail task completions, so finalization is deferred two
        network hops before the vector is considered complete."""
        state = self._sids.get(sid)
        if state is None:
            return
        state.replica_nodes[replica] = set(nodes_used)

        def finalize() -> None:
            if state.outcome is not None:
                self._check_late_replica(state, replica)
                return
            state.finalized.add(replica)
            self._try_verdict(state)

        self.loop.schedule(
            2 * self.cost.digest_network_seconds,
            finalize,
            label=f"verify-finalize:{sid}:{replica}",
        )

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    def status(self, sid: SubGraphId) -> str:
        state = self._sids.get(sid)
        if state is None or state.outcome is None:
            return PENDING
        return state.outcome.status

    def outcome(self, sid: SubGraphId) -> VerificationOutcome | None:
        state = self._sids.get(sid)
        return state.outcome if state else None

    def _try_verdict(self, state: _SidState) -> None:
        groups: dict[tuple, set[int]] = {}
        for replica in state.finalized:
            vector = state.vectors.get(replica, {})
            signature = tuple(sorted((k, v) for k, v in vector.items()))
            groups.setdefault(signature, set()).add(replica)
        if not groups:
            if len(state.finalized) >= state.expected:
                self._decide(state, FAILED, winners=set())
            return
        best_signature, best_group = max(
            groups.items(), key=lambda item: (len(item[1]), item[0])
        )
        if len(best_group) >= state.quorum:
            self._decide(state, VERIFIED, winners=best_group)
        elif len(state.finalized) >= state.expected:
            # Everyone reported; no quorum possible.  Without a quorum
            # there is no known-correct vector, so *no* replica can be
            # exonerated: all clusters become suspects (winners = ∅).
            self._decide(state, FAILED, winners=set())

    def _check_late_replica(self, state: _SidState, replica: int) -> None:
        """Attribute faults in replicas completing after the verdict."""
        outcome = state.outcome
        if (
            outcome is None
            or outcome.status != VERIFIED
            or replica in outcome.winners
            or replica in state.finalized
        ):
            return
        state.finalized.add(replica)
        winner_vector = state.vectors.get(min(outcome.winners), {})
        vector = state.vectors.get(replica, {})
        state.comparisons += len(vector)
        self.total_comparisons += len(vector)
        if vector == winner_vector:
            return
        is_subset = all(
            winner_vector.get(key) == value for key, value in vector.items()
        ) and len(vector) < len(winner_vector)
        fault = ReplicaFault(
            replica=replica,
            kind=OMISSION if is_subset else COMMISSION,
            nodes=frozenset(state.replica_nodes.get(replica, set())),
        )
        outcome.faults.append(fault)
        if self._tracer.enabled:
            self._tracer.event(
                "verify.late_fault",
                sid=state.sid,
                replica=replica,
                kind=fault.kind,
            )
        if self.on_late_fault is not None:
            self.on_late_fault(state.sid, fault)

    def _timeout(self, sid: SubGraphId) -> None:
        state = self._sids.get(sid)
        if state is None or state.outcome is not None:
            return
        if self._tracer.enabled:
            self._tracer.event(
                "verify.timeout",
                sid=sid,
                finalized=len(state.finalized),
                expected=state.expected,
            )
        self._decide(state, TIMEOUT, winners=set())

    def _decide(self, state: _SidState, status: str, winners: set[int]) -> None:
        expected_replicas = set(range(state.expected))
        missing = expected_replicas - state.finalized
        faults: list[ReplicaFault] = []
        winner_vector: dict[DigestKey, bytes] | None = None
        if winners:
            winner_vector = state.vectors.get(next(iter(winners)), {})
        for replica in sorted(state.finalized - winners):
            vector = state.vectors.get(replica, {})
            kind = COMMISSION
            if winner_vector is not None:
                is_subset = all(
                    winner_vector.get(key) == value for key, value in vector.items()
                ) and len(vector) < len(winner_vector)
                if is_subset:
                    kind = OMISSION  # digests withheld, none wrong
            faults.append(
                ReplicaFault(
                    replica=replica,
                    kind=kind,
                    nodes=frozenset(state.replica_nodes.get(replica, set())),
                )
            )
        # Final offline pass: every digest of every losing/completed
        # replica is compared against the winner's.
        final_comparisons = sum(
            len(state.vectors.get(replica, {}))
            for replica in state.finalized - winners
        )
        state.comparisons += final_comparisons
        self.total_comparisons += final_comparisons

        outcome = VerificationOutcome(
            sid=state.sid,
            status=status,
            winners=set(winners),
            faults=faults,
            missing_replicas=missing,
            comparisons=state.comparisons,
            first_mismatch_at=state.first_mismatch_at,
        )
        state.outcome = outcome

        compare_delay = state.comparisons * self.cost.verifier_compare_seconds
        if self._tracer.enabled:
            # The final digest-matching pass: off the critical path, its
            # simulated cost is the "overhead of matching f+1 digests".
            self._tracer.emit(
                "verify.compare",
                start=self.loop.now,
                end=self.loop.now + compare_delay,
                parent=state.span,
                sid=state.sid,
                comparisons=state.comparisons,
            )
            self.telemetry.metrics.histogram(
                "verifier_compare_seconds"
            ).observe(compare_delay)
            self.telemetry.metrics.counter(
                "verifier_verdicts", status=status
            ).inc()

        def deliver() -> None:
            outcome.decided_at = self.loop.now
            if state.span is not None:
                state.span.end(
                    end=self.loop.now,
                    status=status,
                    comparisons=state.comparisons,
                    winners=sorted(outcome.winners),
                    missing=sorted(outcome.missing_replicas),
                    faults=len(outcome.faults),
                )
            if self.on_verdict is not None:
                self.on_verdict(outcome)

        self.loop.schedule(compare_delay, deliver, label=f"verdict:{state.sid}")
