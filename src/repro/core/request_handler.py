"""Request handler: client handler + graph analyzer + job initiator prep.

The control-tier component that accepts a script, turns it into an
instrumented, compiled job graph, and decides the replication plan
(paper §4.1).  Execution itself is the
:class:`~repro.core.controller.ClusterBFTController`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import ADVERSARY_STRONG, ClusterBFTConfig
from repro.compiler.jobspec import JobGraph, JobSpec
from repro.compiler.mr_compiler import CompileOptions, MRCompiler, compile_plan
from repro.core import graph_analyzer
from repro.core.instrument import InstrumentedPlan, instrument
from repro.dataflow.operators import VerifyOp
from repro.dataflow.piglatin import parse_script
from repro.dataflow.plan import LogicalPlan, VertexId


@dataclass
class PreparedScript:
    """Everything the job initiator needs to start submitting replicas."""

    plan: LogicalPlan  # original (uninstrumented) plan
    instrumented: InstrumentedPlan
    job_graph: JobGraph
    marked_vertices: list[VertexId]
    config: ClusterBFTConfig
    marker_scores: list[float] = field(default_factory=list)
    #: Whether output streams were auto-instrumented — recorded so a
    #: journal replay can re-prepare the exact same instrumented plan.
    include_output_points: bool = True

    def jobs_with_digests(self) -> list[int]:
        """Indices of jobs that emit digests (verifiable jobs)."""
        return [
            index
            for index, job in enumerate(self.job_graph.jobs)
            if job_has_verification(job)
        ]


def job_has_verification(job: JobSpec) -> bool:
    """True if any pipeline of the job contains a VerifyOp."""
    pipelines = [branch.pipeline for branch in job.branches]
    pipelines.append(job.reduce_pipeline)
    pipelines.append(job.post_limit_pipeline)
    return any(
        isinstance(stage.op, VerifyOp) for pipeline in pipelines for stage in pipeline
    )


def output_coverage(job: JobSpec) -> str | None:
    """The vp_id covering the job's *output stream*, or None.

    A VERIFIED job may only be committed (reused across reruns / written
    to the user-visible store path) when the digest quorum covered the
    very stream that was written out — i.e. the final pipeline stage is
    the verification point.
    """
    if job.is_map_only:
        vp_ids = set()
        for branch in job.branches:
            if not branch.pipeline or not isinstance(branch.pipeline[-1].op, VerifyOp):
                return None
            vp_ids.add(branch.pipeline[-1].op.vp_id)
        return vp_ids.pop() if len(vp_ids) == 1 else None
    if job.post_limit_pipeline:
        last = job.post_limit_pipeline[-1].op
        return last.vp_id if isinstance(last, VerifyOp) else None
    if job.fused_limit is not None:
        return None  # limit slices after the reduce pipeline's digest
    if job.reduce_pipeline and isinstance(job.reduce_pipeline[-1].op, VerifyOp):
        return job.reduce_pipeline[-1].op.vp_id
    return None


class RequestHandler:
    """Prepares client scripts for assured execution."""

    def __init__(self, config: ClusterBFTConfig) -> None:
        self.config = config.validate()

    def prepare(
        self,
        script: str | LogicalPlan,
        input_sizes: dict[str, int],
        explicit_points: list[VertexId] | None = None,
        include_output_points: bool = True,
        compile_options: CompileOptions | None = None,
        optimize_plan: bool = False,
    ) -> PreparedScript:
        """Parse (if needed), analyze, instrument and compile a script.

        ``explicit_points`` overrides the marker function — used by the
        §6.1 experiments that sweep digest positions by hand.  With
        ``optimize_plan`` the rewrite rules of
        :mod:`repro.dataflow.optimizer` run first (on a clone; explicit
        points refer to the *optimized* plan's vertices in that case).
        """
        plan = parse_script(script) if isinstance(script, str) else script
        plan.validate()
        if optimize_plan:
            from repro.dataflow.optimizer import optimize

            plan = plan.clone()
            optimize(plan)

        scores: list[float] = []
        if explicit_points is not None:
            marked = list(explicit_points)
        elif self.config.checkpoint_density > 0.0:
            # Expected-rerun-cost placement (checkpoint tier): pick the
            # points whose commits save the most recomputation on a
            # rerun, at the configured density, instead of the paper's
            # fixed-count marker.  Deterministic: a resumed run that
            # re-prepares the script derives the identical markers.
            ratios = graph_analyzer.input_ratios(plan, input_sizes)
            candidates = self.candidate_vertices(plan)
            result = graph_analyzer.mark_by_rerun_cost(
                plan, self.config.checkpoint_density, ratios, candidates
            )
            marked = result.marked
            scores = result.scores
        elif self.config.verification_points > 0:
            ratios = graph_analyzer.input_ratios(plan, input_sizes)
            candidates = self.candidate_vertices(plan)
            result = graph_analyzer.mark(
                plan, self.config.verification_points, ratios, candidates
            )
            marked = result.marked
            scores = result.scores
        else:
            marked = []

        instrumented = instrument(
            plan,
            marked,
            chunk_records=self.config.digest_chunk_records,
            include_outputs=include_output_points,
        )
        job_graph = compile_plan(instrumented.plan, compile_options)
        return PreparedScript(
            plan=plan,
            instrumented=instrumented,
            job_graph=job_graph,
            marked_vertices=marked,
            config=self.config,
            marker_scores=scores,
            include_output_points=include_output_points,
        )

    def candidate_vertices(self, plan: LogicalPlan) -> list[VertexId]:
        """Verification-point candidates under the configured adversary.

        Strong adversary: only vertices whose output crosses a *job
        boundary* — found by probe-compiling the plan (the compiler
        records which vertices get materialized to DFS).
        """
        if self.config.adversary == ADVERSARY_STRONG:
            probe = MRCompiler(plan.clone())
            probe.compile()
            return sorted(probe.boundary_vertices)
        return graph_analyzer.candidate_vertices(plan, self.config.adversary)
