"""Dummy-job probing: active fault isolation (paper §3.3).

"Similarly, dummy jobs can be used to further probe nodes in such a
suspicious replication group."  When the fault analyzer has narrowed
suspicion to a set of nodes but not to a single culprit, the control
tier can *spend resources to buy attribution precision*: it runs small
probe jobs whose replicas are deliberately placed on chosen node
subsets, and compares their digests against a replica on known-good
nodes.

:class:`ProbeManager` binary-searches a suspect set: each round runs one
probe job with a *candidate* replica (half of the suspects, padded with
clean nodes to satisfy the probe's slot needs) against a *reference*
replica on clean nodes only.  A digest mismatch proves the faulty node
is in the candidate half.  Byzantine nodes that only misbehave
probabilistically (the paper's "infected node may be mostly producing
correct output") are handled by repeating each round up to
``repeats_per_round`` times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import NodeId
from repro.common.records import Record
from repro.compiler.mr_compiler import CompileOptions, compile_plan
from repro.core.instrument import instrument
from repro.dataflow import expressions as ex
from repro.dataflow.builder import PlanBuilder
from repro.dataflow.schema import INT, Schema
from repro.mapreduce.engine import DigestReport, JobRun


@dataclass
class ProbeOutcome:
    """Result of a probing campaign over one suspect set."""

    suspects_before: frozenset[NodeId]
    isolated: list[NodeId] = field(default_factory=list)
    probes_run: int = 0
    exonerated: set[NodeId] = field(default_factory=set)

    @property
    def narrowed(self) -> bool:
        return len(self.isolated) > 0


#: The probe workload: a small group-and-count over synthetic pairs.
#: Deterministic, touches map and reduce paths, cheap.
_PROBE_SCHEMA = Schema.of(("k", INT), ("v", INT))


def _probe_records(size: int) -> list[Record]:
    return [Record((i % 7, i)) for i in range(size)]


class ProbeManager:
    """Runs placement-constrained dummy jobs through a controller.

    The manager needs at least ``probe_slots`` clean nodes (not in the
    suspect set, not excluded) to host the reference replica and to pad
    the candidate replica.
    """

    def __init__(
        self,
        controller,
        probe_records: int = 400,
        repeats_per_round: int = 3,
        max_rounds: int = 16,
    ) -> None:
        self.controller = controller
        self.probe_records = probe_records
        self.repeats_per_round = repeats_per_round
        self.max_rounds = max_rounds
        self._probe_counter = 0
        self._input_ready = False

    # ------------------------------------------------------------------

    def _clean_nodes(self, suspects: set[NodeId]) -> list[NodeId]:
        cluster = self.controller.cluster
        return [
            node.node_id
            for node in cluster.active_nodes()
            if node.node_id not in suspects
        ]

    def _probe_plan(self):
        builder = PlanBuilder()
        data = builder.load("__probe/input", _PROBE_SCHEMA, alias="probe")
        (
            data.group_by("k")
            .generate(("group", "k"), (ex.count(ex.field("probe")), "n"))
            .store("__probe/output")
        )
        return builder.build()

    def _ensure_input(self) -> None:
        if not self._input_ready:
            self.controller.load_input(
                "__probe/input", _probe_records(self.probe_records)
            )
            self._input_ready = True

    # ------------------------------------------------------------------

    def run_probe(self, candidate_nodes: set[NodeId], reference_nodes: set[NodeId]) -> bool:
        """Run one probe; True iff the candidate replica's digests differ
        from the reference replica's (fault present among candidates)."""
        self._ensure_input()
        controller = self.controller
        plan = self._probe_plan()
        instrumented = instrument(plan, [], include_outputs=True)
        graph = compile_plan(
            instrumented.plan,
            CompileOptions(num_reducers=2, temp_prefix="__probe/tmp"),
        )
        self._probe_counter += 1
        probe_id = f"probe{self._probe_counter:04d}"

        vectors: dict[int, dict] = {0: {}, 1: {}}
        completed: set[tuple[int, int]] = set()

        def sink(report: DigestReport) -> None:
            for digest in report.digests:
                key = (report.vp_id, report.task_label, digest.chunk_index)
                vectors[report.replica][key] = digest.value

        placements = {0: set(candidate_nodes), 1: set(reference_nodes)}
        expected: set[tuple[int, int]] = set()
        for job_index in graph.topological_order():
            spec = graph.jobs[job_index]
            for replica, allowed in placements.items():
                run = JobRun(
                    job_id=f"{probe_id}.j{job_index}.r{replica}",
                    sid=f"{probe_id}.j{job_index}",
                    replica=replica,
                    spec=spec,
                    path_map={
                        spec.output_path: f"__probe/{probe_id}/r{replica}/out"
                    },
                    scope=probe_id,
                    digest_sink=sink,
                    on_complete=lambda run, j=job_index, k=replica: completed.add(
                        (j, k)
                    ),
                    total_replicas=2,
                    allowed_nodes=allowed,
                )
                expected.add((job_index, replica))
                controller.engine.submit(run)

        deadline = controller.loop.now + 120.0
        controller.loop.run_while(
            lambda: completed < expected and controller.loop.now < deadline
        )
        # Let trailing digest messages land.
        controller.loop.run_until(
            controller.loop.now + 4 * controller.config.cost.digest_network_seconds
        )
        return vectors[0] != vectors[1]

    # ------------------------------------------------------------------

    def isolate(self, suspects: set[NodeId]) -> ProbeOutcome:
        """Binary-search ``suspects`` down to individual faulty nodes.

        Assumes at most one faulty node per disjoint suspect set (the
        invariant the Fig. 7 analyzer establishes once |D| = f).
        """
        outcome = ProbeOutcome(suspects_before=frozenset(suspects))
        clean = self._clean_nodes(set(suspects))
        if len(clean) < 2:
            return outcome  # nowhere to host a reference replica

        pool = sorted(suspects)
        rounds = 0
        while len(pool) > 1 and rounds < self.max_rounds:
            rounds += 1
            half = set(pool[: len(pool) // 2])
            # The candidate replica runs *exclusively* on the probed half
            # — padding it with clean nodes would let them take all the
            # tasks and leave the suspects untested (tasks simply queue
            # on a small node set).  The reference replica is fully clean.
            candidate = set(half)
            reference = set(clean[-max(2, len(half)):])
            hit = False
            for _ in range(self.repeats_per_round):
                outcome.probes_run += 1
                if self.run_probe(candidate, reference):
                    hit = True
                    break
            if hit:
                outcome.exonerated |= set(pool) - half
                pool = sorted(half)
            else:
                outcome.exonerated |= half
                pool = sorted(set(pool) - half)
        if len(pool) == 1:
            # Confirm: a flaky node may have stayed silent in one round,
            # sending the search down the wrong half.  Only report an
            # isolation the survivor actually reproduces.
            survivor = pool[0]
            candidate = {survivor}
            reference = set(clean[-2:])
            for _ in range(self.repeats_per_round):
                outcome.probes_run += 1
                if self.run_probe(candidate, reference):
                    outcome.isolated = [survivor]
                    break
        return outcome
