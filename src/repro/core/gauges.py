"""Suspicion/isolation gauge publication — the ONE code path that turns
tracker state into telemetry time-series.

Both execution surfaces publish through :func:`publish_suspicion`: the
ClusterBFT controller (after every outcome batch, so chaos-campaign
traces carry the series) and the §6.3 isolation simulator (after every
time step, so Figs. 12/13 regenerate from a trace).  Keeping a single
helper guarantees the two trace flavours use identical metric names and
labels — ``repro report`` and the benchmark suite read them back with
:func:`repro.telemetry.analysis.gauge_series`.

Series published (gauges; each ``set()`` lands one timestamped sample
in the trace stream):

* ``suspicion_band_nodes{band=none|low|med|high}`` — Fig. 12's y-axis;
* ``suspicion_suspects`` — nodes with level > 0 (Fig. 13's spikes);
* ``fault_analyzer_disjoint_sets`` / ``fault_analyzer_overlapping_sets``
  — |D| and |O| of the Fig. 7 analyzer;
* ``fault_analyzer_suspects`` — |⋃D|, the bound that stops growing at
  saturation;
* ``nodes_quarantined`` — when the caller tracks a quarantine tier.
"""

from __future__ import annotations

from repro.core.fault_analyzer import FaultAnalyzer
from repro.core.suspicion import SuspicionTracker


def publish_suspicion(
    metrics,
    suspicion: SuspicionTracker,
    analyzer: FaultAnalyzer,
    quarantined: int | None = None,
) -> None:
    """Set the suspicion/isolation gauges from current tracker state."""
    for band_name, count in suspicion.band_counts().items():
        metrics.gauge("suspicion_band_nodes", band=band_name).set(count)
    metrics.gauge("suspicion_suspects").set(len(suspicion.suspects()))
    metrics.gauge("fault_analyzer_disjoint_sets").set(len(analyzer.disjoint))
    metrics.gauge("fault_analyzer_overlapping_sets").set(len(analyzer.overlapping))
    metrics.gauge("fault_analyzer_suspects").set(len(analyzer.suspects()))
    if quarantined is not None:
        metrics.gauge("nodes_quarantined").set(quarantined)
