"""Fault identification & isolation: the FAULT_ANALYZER of paper Fig. 7.

Input events are *faulty job clusters*: the set of nodes that executed a
replica whose digests lost the vote (a commission fault).  The analyzer
maintains

* ``D`` — disjoint faulty sets.  Because each replica cluster contains
  at least one faulty node and sets in D are pairwise disjoint, once
  ``|D| = f`` every set in D contains *exactly one* faulty node and no
  node outside ``⋃D`` is faulty (under the ≤ f faults assumption), so
  the suspect population stops growing (the effect Fig. 11/12 measure).
* ``O`` — overlapping faulty sets kept aside; after ``|D| = f`` each new
  or retained overlapping set that intersects exactly one member of D
  shrinks that member to the intersection (stage two, Fig. 7 lines
  13–23): if a faulty cluster touches only one candidate set, its fault
  must live in the intersection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.ids import NodeId

FaultySet = frozenset[NodeId]


@dataclass
class FaultAnalyzer:
    """Online fault isolation over a stream of faulty job clusters."""

    f: int = 1
    disjoint: list[FaultySet] = field(default_factory=list)
    overlapping: list[FaultySet] = field(default_factory=list)
    observations: int = 0
    #: Set on the observation where |D| first reached f (Fig. 11's y-axis
    #: is the number of *jobs completed* at that moment; the caller maps
    #: observations to jobs).
    saturated_at: int | None = None

    def observe(self, cluster: set[NodeId]) -> None:
        """Feed one faulty job cluster (Fig. 7 FAULT_ANALYZER(S))."""
        suspect_set = frozenset(cluster)
        if not suspect_set:
            return
        self.observations += 1

        if all(not (suspect_set & existing) for existing in self.disjoint):
            # Stage 1a: disjoint from everything in D — a new fault site.
            self.disjoint.append(suspect_set)
        else:
            subset_of = [
                existing for existing in self.disjoint if suspect_set <= existing
            ]
            if subset_of:
                # Stage 1b: a tighter cluster replaces its superset in D;
                # the superset is demoted to O (it still holds a fault).
                superset = subset_of[0]
                self.disjoint.remove(superset)
                self.overlapping.append(superset)
                self.disjoint.append(suspect_set)
            else:
                # Stage 1c: intersects D without being contained — keep
                # in O for the refinement stage.
                self.overlapping.append(suspect_set)

        if len(self.disjoint) >= self.f and self.saturated_at is None:
            self.saturated_at = self.observations

        if len(self.disjoint) >= self.f:
            self._refine()

    def _refine(self) -> None:
        """Stage 2 (Fig. 7 lines 13–23): shrink members of D using
        overlapping sets that intersect exactly one member."""
        changed = True
        while changed:
            changed = False
            for overlap in list(self.overlapping):
                touching = [d for d in self.disjoint if d & overlap]
                if len(touching) != 1:
                    continue
                target = touching[0]
                intersection = target & overlap
                if intersection and intersection != target:
                    self.disjoint[self.disjoint.index(target)] = intersection
                    changed = True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def saturated(self) -> bool:
        """True once |D| = f: the suspect population is final."""
        return len(self.disjoint) >= self.f

    def suspects(self) -> set[NodeId]:
        """All nodes still under suspicion."""
        out: set[NodeId] = set()
        for suspect_set in self.disjoint:
            out |= suspect_set
        return out

    def isolated_faults(self) -> list[NodeId]:
        """Faulty nodes identified exactly (singleton sets in D)."""
        return sorted(
            next(iter(suspect_set))
            for suspect_set in self.disjoint
            if len(suspect_set) == 1
        )

    def describe(self) -> str:
        d_text = ", ".join("{" + ",".join(sorted(s)) + "}" for s in self.disjoint)
        return (
            f"FaultAnalyzer(f={self.f}, |D|={len(self.disjoint)}, "
            f"|O|={len(self.overlapping)}, D=[{d_text}])"
        )
