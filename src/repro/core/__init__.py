"""ClusterBFT core: the paper's contribution.

Graph analysis (verification-point selection), plan instrumentation,
replica orchestration, digest verification, suspicion tracking, fault
isolation, and the end-to-end controller.
"""

from repro.core.controller import ClusterBFTController, ScriptResult
from repro.core.fault_analyzer import FaultAnalyzer
from repro.core.graph_analyzer import analyze, input_ratios, mark
from repro.core.instrument import InstrumentedPlan, instrument
from repro.core.request_handler import PreparedScript, RequestHandler
from repro.core.resource_manager import ResourceManager, ResourceRow
from repro.core.suspicion import SuspicionTracker, band
from repro.core.verifier import VerificationOutcome, Verifier

__all__ = [
    "ClusterBFTController",
    "FaultAnalyzer",
    "InstrumentedPlan",
    "PreparedScript",
    "RequestHandler",
    "ResourceManager",
    "ResourceRow",
    "ScriptResult",
    "SuspicionTracker",
    "VerificationOutcome",
    "Verifier",
    "analyze",
    "band",
    "input_ratios",
    "instrument",
    "mark",
]
