"""Resource manager: the trusted tier's view of the worker cluster.

Paper §4.2: resources are partitioned into uniform resource units; the
resource table keeps one tuple ``(nid, #ru, (sid...), s)`` per node —
node id, resource units, current sub-graph allocations, and suspicion
level.  Placement policy itself lives in
:class:`~repro.mapreduce.scheduler.ClusterBFTScheduler`; this module is
the bookkeeping and administrative interface around it: the inclusion
list, threshold eviction, and operator re-initialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.ids import NodeId, SubGraphId
from repro.core.suspicion import SuspicionTracker
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.engine import MapReduceEngine


@dataclass(frozen=True)
class ResourceRow:
    """One row of the paper's resource table."""

    node_id: NodeId
    resource_units: int
    free_units: int
    sids: tuple[SubGraphId, ...]
    suspicion: float
    excluded: bool


class ResourceManager:
    """Resource table + inclusion-list management."""

    def __init__(
        self,
        cluster: Cluster,
        engine: MapReduceEngine,
        suspicion: SuspicionTracker,
        suspicion_threshold: float = 0.95,
        min_jobs_for_eviction: int = 3,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.suspicion = suspicion
        self.suspicion_threshold = suspicion_threshold
        self.min_jobs_for_eviction = min_jobs_for_eviction

    # ------------------------------------------------------------------
    # resource table
    # ------------------------------------------------------------------

    def table(self) -> list[ResourceRow]:
        """The current resource table, one row per node."""
        sids_per_node: dict[NodeId, set[SubGraphId]] = {}
        for run in self.engine.runs:
            if not run.is_active:
                continue
            for node_id in run.nodes_used:
                sids_per_node.setdefault(node_id, set()).add(run.sid)
        rows = []
        for node_id in self.cluster.node_ids():
            node = self.cluster.node(node_id)
            rows.append(
                ResourceRow(
                    node_id=node_id,
                    resource_units=node.slots,
                    free_units=node.free_slots,
                    sids=tuple(sorted(sids_per_node.get(node_id, set()))),
                    suspicion=self.suspicion.level(node_id),
                    excluded=node.excluded,
                )
            )
        return rows

    def row(self, node_id: NodeId) -> ResourceRow:
        for row in self.table():
            if row.node_id == node_id:
                return row
        raise KeyError(node_id)

    # ------------------------------------------------------------------
    # inclusion list
    # ------------------------------------------------------------------

    def inclusion_list(self) -> list[NodeId]:
        return [n.node_id for n in self.cluster.active_nodes()]

    def apply_suspicion_policy(self) -> list[NodeId]:
        """Evict nodes over the suspicion threshold (with enough
        evidence); returns the nodes evicted by this call."""
        evicted = []
        for node_id in self.suspicion.over_threshold(self.suspicion_threshold):
            state = self.suspicion.nodes[node_id]
            if state.jobs_executed < self.min_jobs_for_eviction:
                continue
            node = self.cluster.node(node_id)
            if not node.excluded:
                self.cluster.exclude(node_id)
                evicted.append(node_id)
        return evicted

    def reinitialize_node(self, node_id: NodeId) -> None:
        """Administrator intervention (paper §4.2): take the node off the
        grid, patch it, and re-insert it with a clean slate."""
        self.cluster.reinstate(node_id)
        self.suspicion.clear_faults({node_id})

    def overlap_degree(self) -> float:
        """Average number of distinct sids per busy node — the overlap
        the scheduler engineers for fault isolation."""
        rows = [row for row in self.table() if row.sids]
        if not rows:
            return 0.0
        return sum(len(row.sids) for row in rows) / len(rows)
