"""Durable control-plane journal: an append-only write-ahead log.

The trusted control tier is the brain of every run (paper §4's
separation of duty) — and, until this module, its only copy of the
verification/commit state lived in memory.  The journal makes the
control tier restartable: before *acting on* any decision point the
controller appends one JSONL record describing the decision, so a
control-tier crash loses at most the work since the last settled
attempt boundary.  :mod:`repro.core.recovery` replays a journal into a
fresh controller and resumes the run.

Record stream layout (one JSON object per line, sorted keys)::

    {"kind": "header",  "seq": 0, "schema": "repro.journal/v1", ...}
    {"kind": "run_start", "seq": 1, ...}
    {"kind": "attempt_start", "seq": 2, ...}
    {"kind": "digest",  ...}          # one per verifiable replica completion
    {"kind": "verdict", ...}          # one per sid verdict
    {"kind": "fault" | "late_fault" | "analyzer", ...}
    {"kind": "eviction" | "quarantine", ...}
    {"kind": "reconfig", ...}         # fsync'd: region migration decision
    {"kind": "commit",  ...}          # fsync'd: committed output content
    {"kind": "checkpoint", ...}       # fsync'd: verdict-time commit (opt-in)
    {"kind": "attempt_end", ...}      # fsync'd: settled-boundary snapshot
    {"kind": "resume", ...}           # appended when a recovery reopens
    {"kind": "run_end", ...}          # fsync'd: final outputs + status

Durability policy: ``header``, ``commit``, ``attempt_end``, ``resume``
and ``run_end`` records are flushed *and fsync'd* before the writer
returns (these are the records recovery depends on); everything else is
flushed to the OS but not forced to stable storage — a torn tail of
marker records degrades crash-point coverage, never correctness.

The header is schema-versioned and tied to the run: it embeds the seed,
the full :class:`~repro.common.config.SystemConfig`, the script text
*and* its SHA-256, plus the staged input data-sets, so a journal is a
self-contained description of the run (recovery re-stages the inputs
and refuses a header whose script hash does not match its script).

Everything the journal does is host-side I/O: it never schedules event
loop work and never draws randomness, so a journaled run is
byte-identical (outputs, latency, trace) to an unjournaled one with the
same seed — the same invariant the telemetry layer keeps.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import IO, Callable

from repro.common.config import (
    ClusterBFTConfig,
    ClusterConfig,
    CostModelConfig,
    SystemConfig,
)
from repro.common.errors import ReproError
from repro.common.records import Record, encode_value

SCHEMA_VERSION = "repro.journal/v1"

HEADER = "header"
RUN_START = "run_start"
ATTEMPT_START = "attempt_start"
DIGEST = "digest"
VERDICT = "verdict"
FAULT = "fault"
LATE_FAULT = "late_fault"
ANALYZER = "analyzer"
EVICTION = "eviction"
QUARANTINE = "quarantine"
#: Online reconfiguration: a region's replica sets migrated out after
#: its aggregate suspicion crossed the threshold.  Fsync'd — recovery
#: must re-quarantine the region's nodes before re-entering the run, or
#: the resumed scheduler would migrate work *back into* the degraded
#: region.
RECONFIG = "reconfig"
COMMIT = "commit"
#: Verdict-time commit (``ClusterBFTConfig.checkpoints``): a verified,
#: output-covered sub-graph committed *inside* a running attempt, with
#: the winning content inline.  Fsync'd — a crash mid-attempt resumes
#: from the last checkpoint instead of rerunning the whole sub-graph.
CHECKPOINT = "checkpoint"
ATTEMPT_END = "attempt_end"
RESUME = "resume"
RUN_END = "run_end"

#: Record kinds whose loss would corrupt recovery — forced to stable
#: storage before the append returns.
SYNC_KINDS = frozenset(
    {HEADER, RECONFIG, COMMIT, CHECKPOINT, ATTEMPT_END, RESUME, RUN_END}
)


class JournalError(ReproError):
    """Malformed, mismatched or misused journal."""


class ControlTierCrash(RuntimeError):
    """Simulated control-tier crash, raised by a journal crash hook.

    Deliberately *not* a :class:`ReproError`: library error handling
    must never swallow a simulated crash — only the chaos harness (or a
    test) that installed the hook catches it.
    """


def crash_at(seq: int) -> Callable[[dict], None]:
    """A crash hook killing the control tier right after record ``seq``
    becomes durable (the record is written, the action it announces is
    not yet taken — the write-ahead window recovery must handle)."""

    def hook(record: dict) -> None:
        if record["seq"] == seq:
            raise ControlTierCrash(
                f"control tier crashed at journal record {seq} "
                f"({record['kind']})"
            )

    return hook


# ---------------------------------------------------------------------------
# JSON codec for record field values
# ---------------------------------------------------------------------------
#
# Record fields are scalars plus nested tuples and bags; JSON has no
# tuple/bag distinction, so containers are tagged: {"t": [...]} is a
# tuple, {"r": [...]} a nested Record (digest-equivalent to a tuple,
# but Record.__eq__ is type-strict, so the distinction must survive
# the round-trip), {"b": [...]} a bag (canonically ordered by encoded
# bytes, the same canonicalization the digest layer applies — bag
# order never carries meaning).


def value_to_json(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Record):
        return {"r": [value_to_json(v) for v in value.fields]}
    if isinstance(value, tuple):
        return {"t": [value_to_json(v) for v in value]}
    if isinstance(value, (list, frozenset)):
        ordered = sorted(value, key=encode_value)
        return {"b": [value_to_json(v) for v in ordered]}
    raise JournalError(f"unsupported field type: {type(value).__name__}")


def value_from_json(value):
    if isinstance(value, dict):
        if "t" in value:
            return tuple(value_from_json(v) for v in value["t"])
        if "r" in value:
            return Record(tuple(value_from_json(v) for v in value["r"]))
        if "b" in value:
            return [value_from_json(v) for v in value["b"]]
        raise JournalError(f"unknown value tag: {sorted(value)}")
    return value


def record_to_json(record: Record) -> list:
    return [value_to_json(v) for v in record.fields]


def record_from_json(fields: list) -> Record:
    return Record(tuple(value_from_json(v) for v in fields))


def records_to_json(records: list[Record]) -> list[list]:
    return [record_to_json(r) for r in records]


def records_from_json(rows: list[list]) -> list[Record]:
    return [record_from_json(row) for row in rows]


def script_sha256(script: str) -> str:
    return hashlib.sha256(script.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# config (de)serialization
# ---------------------------------------------------------------------------


def config_to_json(config: SystemConfig) -> dict:
    return dataclasses.asdict(config)


def config_from_json(data: dict) -> SystemConfig:
    try:
        return SystemConfig(
            cluster=ClusterConfig(**data["cluster"]),
            cost=CostModelConfig(**data["cost"]),
            bft=ClusterBFTConfig(**data["bft"]),
            seed=data["seed"],
        ).validate()
    except (KeyError, TypeError) as exc:
        raise JournalError(f"journal header config does not round-trip: {exc}")


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------


def _fsync_directory(path: str) -> None:
    """Force a directory entry to stable storage (no-op where the
    platform cannot fsync directories, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class Journal:
    """Append-only write-ahead journal for one assured run.

    ``crash_hook`` — chaos seam: called with each record *after* it is
    durable; raising :class:`ControlTierCrash` (or sending SIGKILL)
    models the control tier dying at exactly that decision point.
    ``tracer`` — when bound (and enabled), every append also lands a
    ``journal.append`` event in the telemetry trace.
    """

    def __init__(
        self,
        path: str,
        handle: IO[str],
        next_seq: int,
        crash_hook: Callable[[dict], None] | None = None,
    ) -> None:
        self.path = path
        self._handle: IO[str] | None = handle
        self._seq = next_seq
        self.crash_hook = crash_hook
        self._tracer = None
        self.run_started = False
        #: Bytes of torn tail :meth:`reopen` truncated before appending
        #: (0 for a fresh or clean journal).  Callers surface this in the
        #: audit log — dropped crash damage is evidence, not noise.
        self.torn_bytes_truncated = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        config: SystemConfig,
        script: str,
        inputs: dict[str, list[Record]],
        block_bytes: int = 1 << 20,
        crash_hook: Callable[[dict], None] | None = None,
    ) -> "Journal":
        """Start a fresh journal: writes (and fsyncs) the header.

        Refuses an existing path — one WAL describes one run, and
        silently truncating a prior run's journal would destroy its
        recovery state.  The parent directory is fsync'd so the new
        file's directory entry survives a host crash too.
        """
        try:
            handle = open(path, "x")
        except FileExistsError:
            raise JournalError(
                f"journal {path} already exists — one WAL describes one "
                "run; resume it with `repro resume` or pass a fresh path"
            )
        journal = cls(path, handle, next_seq=0, crash_hook=crash_hook)
        journal.append(
            HEADER,
            schema=SCHEMA_VERSION,
            seed=config.seed,
            script=script,
            script_sha256=script_sha256(script),
            config=config_to_json(config),
            block_bytes=block_bytes,
            inputs={
                dfs_path: records_to_json(records)
                for dfs_path, records in sorted(inputs.items())
            },
        )
        _fsync_directory(os.path.dirname(os.path.abspath(path)))
        return journal

    @classmethod
    def reopen(
        cls,
        path: str,
        next_seq: int,
        crash_hook: Callable[[dict], None] | None = None,
    ) -> "Journal":
        """Reopen an existing journal for appending (recovery path).

        A crash mid-append can tear the final line (``read_journal``
        tolerates and drops it); truncate that partial line *before*
        appending, or the resume record would be concatenated onto it,
        turning expected crash damage into mid-file corruption that
        poisons every later read.  Records are newline-terminated, so
        everything after the last newline is the torn tail.
        """
        torn_bytes = 0
        with open(path, "rb+") as raw:
            data = raw.read()
            keep = data.rfind(b"\n") + 1
            if keep < len(data):
                torn_bytes = len(data) - keep
                raw.truncate(keep)
                raw.flush()
                os.fsync(raw.fileno())
        handle = open(path, "a")
        journal = cls(path, handle, next_seq=next_seq, crash_hook=crash_hook)
        journal.torn_bytes_truncated = torn_bytes
        return journal

    # -- plumbing -------------------------------------------------------

    def bind_tracer(self, tracer) -> None:
        self._tracer = tracer if getattr(tracer, "enabled", False) else None

    @property
    def closed(self) -> bool:
        return self._handle is None

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq - 1

    def append(self, kind: str, **fields) -> dict:
        """Write one record; returns it (with ``seq`` stamped).

        Records of :data:`SYNC_KINDS` are fsync'd before returning; all
        others are flushed to the OS only.  The crash hook fires after
        durability, i.e. the record survives the crash it triggers.
        """
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        record = {"kind": kind, "seq": self._seq}
        record.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if kind in SYNC_KINDS:
            os.fsync(self._handle.fileno())
        if self._tracer is not None:
            self._tracer.event("journal.append", kind=kind, seq=record["seq"])
        if self.crash_hook is not None:
            self.crash_hook(record)
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# reader
# ---------------------------------------------------------------------------


def read_journal(path: str) -> tuple[list[dict], list[str]]:
    """Read a journal back, tolerating a torn tail.

    Returns ``(records, warnings)``.  A run killed mid-append can leave
    a cut-off final line — that is expected crash damage, reported as a
    warning and dropped.  A parse error *before* the final line means
    the file is corrupt, not truncated, and raises.  The header is
    validated (schema version, script hash) before anything else is
    trusted.
    """
    try:
        with open(path) as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
    except OSError as exc:
        raise JournalError(f"cannot read journal: {exc}")
    records: list[dict] = []
    warnings: list[str] = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            if index == len(lines) - 1:
                warnings.append(
                    f"journal tail truncated: dropped record {index} ({exc})"
                )
                break
            raise JournalError(
                f"journal corrupt at record {index} (not the tail): {exc}"
            )
    if not records:
        raise JournalError(f"journal {path} is empty")
    header = records[0]
    if header.get("kind") != HEADER:
        raise JournalError(f"journal {path} does not start with a header")
    if header.get("schema") != SCHEMA_VERSION:
        raise JournalError(
            f"unsupported journal schema {header.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    recorded = header.get("script_sha256")
    actual = script_sha256(header.get("script", ""))
    if recorded != actual:
        raise JournalError(
            f"journal header script hash mismatch: recorded {recorded}, "
            f"script hashes to {actual} — header tampered or corrupt"
        )
    expected_seq = 0
    for record in records:
        if record.get("seq") != expected_seq:
            raise JournalError(
                f"journal seq gap: expected {expected_seq}, "
                f"got {record.get('seq')} ({record.get('kind')})"
            )
        expected_seq += 1
    return records, warnings


# ---------------------------------------------------------------------------
# resume hand-off
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class ResumeState:
    """What the controller needs to continue a journaled run from its
    last settled attempt boundary.  Built by
    :func:`repro.core.recovery.resume_run`, which also re-stages the
    committed outputs into the fresh DFS before handing this over."""

    script_id: str
    start_attempt: int
    attempts_used: int
    replication: int
    timeout: float
    verified_jobs: set[int] = dataclasses.field(default_factory=set)
    verified_ok: set[int] = dataclasses.field(default_factory=set)
    verified_paths: dict[str, str] = dataclasses.field(default_factory=dict)
    reused: int = 0
