"""Graph analyzer: verification-point selection (paper §4.1).

Implements the two functions of the paper's Fig. 3 and Fig. 5:

* ``INPUT_RATIO(v)`` — the fraction of input data flowing through a
  vertex: LOAD vertices get ``input_size / total_input_size``; any other
  vertex gets the sum of its parents' ratios normalized by the total
  ratio of the previous level.
* ``MARK(V, n)`` — greedily select ``n`` verification points maximizing
  ``score(v) = ir[v] + min(v, M)`` where ``min(v, M)`` is the edge
  distance from ``v`` to the nearest already-marked vertex.

Interpretation notes (the paper leaves two details open):

1. ``min(v, M)`` with ``M`` empty: we measure distance to the nearest
   LOAD vertex — data at rest in the trusted store is implicitly
   verified, so the first point is pushed away from the (already
   trusted) inputs, exactly the "mid point" behaviour the Fig. 4
   walkthrough describes.
2. Distance is undirected shortest-path ("number of edges between v and
   the vertex closest to v in M").

Under the *strong* adversary model only vertices whose output crosses a
job boundary qualify (§4.1): blocking operators and STORE inputs.  Under
the *weak* model every non-sink vertex qualifies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from math import ceil, fsum

from repro.common.config import ADVERSARY_STRONG, ADVERSARY_WEAK
from repro.common.errors import ConfigError, PlanError
from repro.dataflow.operators import LoadOp, VerifyOp
from repro.dataflow.plan import LogicalPlan, VertexId


def input_ratios(plan: LogicalPlan, input_sizes: dict[str, int]) -> dict[VertexId, float]:
    """Paper Fig. 5: the ratio of input data flowing through each vertex.

    ``input_sizes`` maps LOAD paths to their byte sizes (the trusted DFS
    knows these).  Missing paths raise: the analyzer must not silently
    treat an unknown input as empty.
    """
    ratios: dict[VertexId, float] = {}
    levels = plan.levels()
    loads = plan.load_paths()

    total_input = 0
    for path in loads.values():
        if path not in input_sizes:
            raise PlanError(f"no input size known for {path!r}")
        if input_sizes[path] < 0:
            raise PlanError(f"negative input size for {path!r}")
        total_input += input_sizes[path]
    if total_input == 0:
        # Degenerate case (all inputs empty): every ratio is zero and the
        # marker falls back to pure distance scoring.
        return {vid: 0.0 for vid in plan.topological_order()}

    # Group vertices by level for the denominator of the recursive case.
    by_level: dict[int, list[VertexId]] = {}
    for vid, level in levels.items():
        by_level.setdefault(level, []).append(vid)

    for vid in plan.topological_order():
        if vid in loads:
            ratios[vid] = input_sizes[loads[vid]] / total_input
            continue
        parents = plan.parents(vid)
        numerator = sum(ratios[p] for p in parents)
        previous_level = levels[vid] - 1
        denominator = sum(
            ratios[other]
            for other in by_level.get(previous_level, [])
            if other in ratios
        )
        ratios[vid] = numerator / denominator if denominator > 0 else numerator
    return ratios


def undirected_distances(plan: LogicalPlan, origins: set[VertexId]) -> dict[VertexId, int]:
    """BFS edge distance from the nearest origin, ignoring direction."""
    distances: dict[VertexId, int] = {vid: 0 for vid in origins}
    queue = deque(origins)
    while queue:
        vid = queue.popleft()
        for neighbor in plan.inputs(vid) + plan.outputs(vid):
            if neighbor not in distances:
                distances[neighbor] = distances[vid] + 1
                queue.append(neighbor)
    return distances


def candidate_vertices(plan: LogicalPlan, adversary: str) -> list[VertexId]:
    """Vertices eligible to carry a verification point."""
    candidates: list[VertexId] = []
    for vid in plan.topological_order():
        op = plan.op(vid)
        if op.is_sink or isinstance(op, VerifyOp):
            continue
        if adversary == ADVERSARY_WEAK:
            candidates.append(vid)
        elif adversary == ADVERSARY_STRONG:
            # Only data flowing between jobs can be checked: outputs of
            # blocking operators (job tails) and inputs of stores.
            feeds_store = any(plan.op(child).is_sink for child in plan.outputs(vid))
            if op.is_blocking or feeds_store:
                candidates.append(vid)
        else:
            raise ConfigError(f"unknown adversary model: {adversary!r}")
    return candidates


@dataclass
class MarkerResult:
    """Outcome of the marker function."""

    marked: list[VertexId]
    scores: list[float]
    input_ratios: dict[VertexId, float] = field(default_factory=dict)


def mark(
    plan: LogicalPlan,
    n: int,
    ratios: dict[VertexId, float],
    candidates: list[VertexId] | None = None,
) -> MarkerResult:
    """Paper Fig. 3 MARK(V, n): greedily pick ``n`` verification points."""
    if candidates is None:
        candidates = [
            vid for vid in plan.topological_order() if not plan.op(vid).is_sink
        ]
    if n > len(candidates):
        n = len(candidates)

    loads = set(plan.load_paths())
    marked: list[VertexId] = []
    scores: list[float] = []
    for _ in range(n):
        origins = set(marked) if marked else loads
        distance = undirected_distances(plan, origins)
        best_vid: VertexId | None = None
        best_score = float("-inf")
        for vid in candidates:
            if vid in marked:
                continue
            score = ratios.get(vid, 0.0) + distance.get(vid, 0)
            if score > best_score:
                best_vid = vid
                best_score = score
        if best_vid is None:
            break
        marked.append(best_vid)
        scores.append(best_score)
    return MarkerResult(marked=marked, scores=scores, input_ratios=dict(ratios))


def ancestor_sets(plan: LogicalPlan) -> dict[VertexId, set[VertexId]]:
    """Every vertex's transitive upstream set (exclusive of itself)."""
    ancestors: dict[VertexId, set[VertexId]] = {}
    for vid in plan.topological_order():
        upstream: set[VertexId] = set()
        for parent in plan.parents(vid):
            upstream |= ancestors[parent]
            upstream.add(parent)
        ancestors[vid] = upstream
    return ancestors


def mark_by_rerun_cost(
    plan: LogicalPlan,
    density: float,
    ratios: dict[VertexId, float],
    candidates: list[VertexId],
) -> MarkerResult:
    """Expected-rerun-cost placement (``checkpoint_density``).

    A verification point at ``v`` lets a rerun *reuse* everything
    upstream of ``v`` once its output commits, so the work a point
    saves is the weight of its ancestor closure (each vertex weighted
    ``1 + input_ratio`` — recomputing a vertex costs at least one task
    plus data volume).  A point only pays off on failures *downstream*
    of it, so an already-marked vertex discounts exactly the candidates
    it is an ancestor of (the upstream segment it already saves) —
    never candidates upstream of itself, whose commits protect reruns
    the deeper point cannot (the deeper point has not committed yet
    when the failure lands between them).  Greedily pick the candidate
    with the largest marginal saving until
    ``ceil(density * len(candidates))`` points are placed or no
    candidate saves anything new.

    Deterministic: candidates are scanned in their given (sorted)
    order and ties keep the first maximum, so the same plan + density
    always yields the same markers — reruns and resumed runs re-derive
    identical instrumentation.
    """
    if not 0.0 <= density <= 1.0:
        raise ConfigError(f"checkpoint density out of range: {density!r}")
    if density == 0.0 or not candidates:
        return MarkerResult(marked=[], scores=[], input_ratios=dict(ratios))
    budget = max(1, ceil(density * len(candidates)))
    ancestors = ancestor_sets(plan)
    marked: list[VertexId] = []
    scores: list[float] = []
    for _ in range(budget):
        best_vid: VertexId | None = None
        best_gain = 0.0
        for vid in candidates:
            if vid in marked:
                continue
            covered: set[VertexId] = set()
            for other in marked:
                if other in ancestors[vid]:
                    covered |= ancestors[other] | {other}
            uncovered = (ancestors[vid] | {vid}) - covered
            # fsum: exact float summation, so the gain is independent of
            # set-iteration order (plain sum() would not be).
            gain = len(uncovered) + fsum(
                ratios.get(upstream, 0.0) for upstream in uncovered
            )
            if gain > best_gain:
                best_vid = vid
                best_gain = gain
        if best_vid is None:
            break
        marked.append(best_vid)
        scores.append(best_gain)
    return MarkerResult(marked=marked, scores=scores, input_ratios=dict(ratios))


def analyze(
    plan: LogicalPlan,
    input_sizes: dict[str, int],
    n: int,
    adversary: str = ADVERSARY_STRONG,
) -> MarkerResult:
    """End-to-end analysis: ratios → candidates → marker selection."""
    ratios = input_ratios(plan, input_sizes)
    candidates = candidate_vertices(plan, adversary)
    return mark(plan, n, ratios, candidates)


def is_load(plan: LogicalPlan, vid: VertexId) -> bool:
    return isinstance(plan.op(vid), LoadOp)
