"""Map-side combining (algebraic partial aggregation).

Pig/Hadoop's classic shuffle optimization: when a GROUP feeds a FOREACH
of *algebraic* aggregates (COUNT, SUM, MIN, MAX, AVG), map tasks can
pre-aggregate per key and ship one small partial record per key instead
of the whole bag.  The reducer merges partials; outputs are identical.

Safety rules (each guards a correctness property):

* the FOREACH must be the first reduce-side operator — a verification
  point between GROUP and FOREACH taps the full bags, which combining
  elides;
* projections may only be the ``group`` key or algebraic aggregates of
  bag fields;
* SUM/AVG over floating-point fields are **excluded**: partial sums
  re-associate float addition, which may differ from the reference
  interpreter in the last bits and break digest equality with
  uncombined executions (the paper's §5.4 determinism discussion is
  exactly about this class of bug).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.records import Record
from repro.compiler.jobspec import JobSpec
from repro.dataflow import schema as sc
from repro.dataflow.expressions import BagProject, FieldRef, FuncCall
from repro.dataflow.operators import ForeachOp, GroupOp

COUNT = "count"
SUM = "sum"
MIN = "min"
MAX = "max"

#: layout entries: ("group",) or ("agg", slot) or ("avg", sum_slot, count_slot)
GROUP_FIELD = "group"
AGG_FIELD = "agg"
AVG_FIELD = "avg"


@dataclass(frozen=True)
class AggregateSlot:
    """One partial-state accumulator."""

    kind: str  # COUNT | SUM | MIN | MAX
    field_index: int | None  # index into the group *input* schema


@dataclass(frozen=True)
class CombinerSpec:
    """Compiled combining plan for one GROUP+FOREACH job."""

    slots: tuple[AggregateSlot, ...]
    layout: tuple[tuple, ...]  # one entry per original projection

    # ------------------------------------------------------------------
    # map side
    # ------------------------------------------------------------------

    def initial_partial(self, records: list[Record]) -> Record:
        """Aggregate one map task's records for one key into a partial."""
        values = []
        for slot in self.slots:
            values.append(self._aggregate(slot, records))
        return Record(tuple(values))

    def _aggregate(self, slot: AggregateSlot, records: list[Record]):
        if slot.kind == COUNT:
            return len(records)
        column = [
            record[slot.field_index]
            for record in records
            if record[slot.field_index] is not None
        ]
        if not column:
            return None
        if slot.kind == SUM:
            return sum(column)
        if slot.kind == MIN:
            return min(column)
        return max(column)

    # ------------------------------------------------------------------
    # reduce side
    # ------------------------------------------------------------------

    def merge(self, partials: list[Record]) -> Record:
        """Merge map-side partials for one key."""
        values = []
        for index, slot in enumerate(self.slots):
            column = [p[index] for p in partials if p[index] is not None]
            if slot.kind == COUNT:
                values.append(sum(column))
            elif not column:
                values.append(None)
            elif slot.kind == SUM:
                values.append(sum(column))
            elif slot.kind == MIN:
                values.append(min(column))
            else:
                values.append(max(column))
        return Record(tuple(values))

    def finalize(self, key, merged: Record) -> Record:
        """Produce the record the original FOREACH would have produced."""
        out = []
        for entry in self.layout:
            if entry[0] == GROUP_FIELD:
                out.append(key)
            elif entry[0] == AGG_FIELD:
                out.append(merged[entry[1]])
            else:  # AVG
                total, count = merged[entry[1]], merged[entry[2]]
                out.append(None if not count or total is None else total / count)
        return Record(tuple(out))


def _exact_type(type_tag: str) -> bool:
    return type_tag in (sc.INT, sc.LONG)


def build_combiner(job: JobSpec) -> CombinerSpec | None:
    """Return a combiner plan for ``job`` if it is eligible, else None."""
    if not isinstance(job.blocking, GroupOp):
        return None
    if any(branch.tag != 0 for branch in job.branches):
        return None
    if not job.reduce_pipeline:
        return None
    foreach = job.reduce_pipeline[0].op
    if not isinstance(foreach, ForeachOp):
        return None
    group_schema = job.reduce_pipeline[0].input_schema  # (group, bag)
    bag_field = group_schema.field(1)
    input_schema = bag_field.inner
    if input_schema is None:
        return None
    bag_names = {bag_field.name, bag_field.name.split("::")[-1]}

    slots: list[AggregateSlot] = []
    layout: list[tuple] = []

    def slot_for(slot: AggregateSlot) -> int:
        for index, existing in enumerate(slots):
            if existing == slot:
                return index
        slots.append(slot)
        return len(slots) - 1

    for projection in foreach.projections:
        expr = projection.expr
        if isinstance(expr, FieldRef) and expr.name in ("group", "$0"):
            layout.append((GROUP_FIELD,))
            continue
        if not isinstance(expr, FuncCall):
            return None
        name = expr.name.upper()
        if name not in ("COUNT", "SUM", "AVG", "MIN", "MAX") or len(expr.args) != 1:
            return None
        arg = expr.args[0]
        if name == "COUNT" and isinstance(arg, FieldRef) and arg.name in bag_names:
            layout.append((AGG_FIELD, slot_for(AggregateSlot(COUNT, None))))
            continue
        if not (
            isinstance(arg, BagProject)
            and isinstance(arg.bag, FieldRef)
            and arg.bag.name in bag_names
        ):
            return None
        try:
            field_index = input_schema.index_of(arg.field)
        except Exception:
            return None
        field_type = input_schema.field(field_index).type
        if name == "COUNT":
            layout.append((AGG_FIELD, slot_for(AggregateSlot(COUNT, None))))
        elif name == "MIN":
            layout.append((AGG_FIELD, slot_for(AggregateSlot(MIN, field_index))))
        elif name == "MAX":
            layout.append((AGG_FIELD, slot_for(AggregateSlot(MAX, field_index))))
        elif name == "SUM":
            if not _exact_type(field_type):
                return None  # float reassociation hazard
            layout.append((AGG_FIELD, slot_for(AggregateSlot(SUM, field_index))))
        else:  # AVG
            if not _exact_type(field_type):
                return None
            sum_slot = slot_for(AggregateSlot(SUM, field_index))
            count_slot = slot_for(AggregateSlot(COUNT, None))
            layout.append((AVG_FIELD, sum_slot, count_slot))
    if not any(entry[0] != GROUP_FIELD for entry in layout):
        return None  # nothing aggregated; combining would be pointless
    return CombinerSpec(slots=tuple(slots), layout=tuple(layout))
