"""Logical plan → MapReduce job graph compiler."""

from repro.compiler.jobspec import JobGraph, JobSpec, MapBranch, PipelineOp
from repro.compiler.mr_compiler import CompileOptions, MRCompiler, compile_plan

__all__ = [
    "CompileOptions",
    "JobGraph",
    "JobSpec",
    "MapBranch",
    "MRCompiler",
    "PipelineOp",
    "compile_plan",
]
