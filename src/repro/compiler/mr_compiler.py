"""Logical plan → MapReduce job graph.

Implements Pig's compilation scheme on our operator set:

* streaming operators (FILTER, FOREACH, VERIFY, UNION) extend the map
  (or reduce) pipeline of the current job segment;
* blocking operators (GROUP, JOIN, DISTINCT, ORDER, LIMIT) force a
  shuffle: they become the reduce phase of a job;
* two blocking operators in sequence split into two jobs connected by a
  temporary DFS file — the "job chain" the paper's challenge C2 talks
  about;
* a vertex with several consumers is materialized once and re-read, so
  diamond plans (the airline multi-store query, paper Fig. 8 (iii))
  compile correctly;
* LIMIT directly following a single-reducer blocking job is fused into
  that job to preserve sort order (Pig does the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CompileError
from repro.dataflow.operators import (
    BlockingOperator,
    LimitOp,
    LoadOp,
    StoreOp,
    StreamingOperator,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.dataflow.schema import Schema
from repro.compiler.jobspec import JobGraph, JobSpec, MapBranch, PipelineOp


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for the compiler."""

    num_reducers: int = 4  # paper: replicas share the same reducer count
    temp_prefix: str = "tmp"
    #: Map-side combining for algebraic GROUP+FOREACH jobs (Pig's
    #: combiner optimization); see repro.compiler.combiner for the
    #: eligibility rules that keep digests deterministic.
    enable_combiners: bool = True

    def validate(self) -> "CompileOptions":
        if self.num_reducers < 1:
            raise CompileError("num_reducers must be >= 1")
        return self


@dataclass
class _Segment:
    """A job under construction, cursor at some plan vertex."""

    branches: list[MapBranch]
    blocking: BlockingOperator | None = None
    blocking_schemas: list[Schema] = field(default_factory=list)
    reduce_pipeline: list[PipelineOp] = field(default_factory=list)
    fused_limit: int | None = None
    post_limit_pipeline: list[PipelineOp] = field(default_factory=list)
    name_parts: list[str] = field(default_factory=list)

    def copy(self) -> "_Segment":
        return _Segment(
            branches=[
                MapBranch(b.input_path, b.tag, list(b.pipeline))
                for b in self.branches
            ],
            blocking=self.blocking,
            blocking_schemas=list(self.blocking_schemas),
            reduce_pipeline=list(self.reduce_pipeline),
            fused_limit=self.fused_limit,
            post_limit_pipeline=list(self.post_limit_pipeline),
            name_parts=list(self.name_parts),
        )


class MRCompiler:
    """Compiles one validated :class:`LogicalPlan` into a :class:`JobGraph`."""

    def __init__(self, plan: LogicalPlan, options: CompileOptions | None = None) -> None:
        self.plan = plan
        self.options = (options or CompileOptions()).validate()
        self.graph = JobGraph()
        self._segments: dict[VertexId, _Segment] = {}
        self._temp_counter = 0
        #: Vertices whose output stream becomes a job output (temp file
        #: or store) — the "data-flow between jobs" the strong-adversary
        #: model allows verification points on.
        self.boundary_vertices: set[VertexId] = set()

    # ------------------------------------------------------------------

    def compile(self) -> JobGraph:
        self.plan.validate()
        for vid in self.plan.topological_order():
            self._visit(vid)
        if not self.graph.jobs:
            raise CompileError("plan compiled to zero jobs")
        return self.graph

    # ------------------------------------------------------------------

    def _visit(self, vid: VertexId) -> None:
        op = self.plan.op(vid)
        if isinstance(op, LoadOp):
            segment = _Segment(
                branches=[MapBranch(op.path, tag=0)],
                name_parts=[op.alias or "load"],
            )
        elif isinstance(op, StoreOp):
            self.boundary_vertices.add(self.plan.inputs(vid)[0])
            self._finish(self._take_parent(vid, 0), op.path, temp=False)
            return
        elif isinstance(op, UnionOp):
            segment = self._compile_union(vid, op)
        elif isinstance(op, LimitOp):
            segment = self._compile_limit(vid, op)
        elif isinstance(op, BlockingOperator):
            segment = self._compile_blocking(vid, op)
        elif isinstance(op, StreamingOperator):
            segment = self._take_parent(vid, 0)
            parent_schema = self.plan.schema_of(self.plan.inputs(vid)[0])
            stage = PipelineOp(op, parent_schema)
            if segment.blocking is None:
                for branch in segment.branches:
                    branch.pipeline.append(stage)
            elif segment.fused_limit is not None:
                segment.post_limit_pipeline.append(stage)
            else:
                segment.reduce_pipeline.append(stage)
            if op.alias:
                segment.name_parts.append(op.alias)
        else:
            raise CompileError(f"cannot compile operator {op!r}")

        # A vertex consumed by several downstream operators must be
        # materialized so each consumer re-reads a stable copy.
        if len(self.plan.outputs(vid)) > 1:
            self.boundary_vertices.add(vid)
            segment = self._materialize(segment)
        self._segments[vid] = segment

    # -- operator cases --------------------------------------------------

    def _compile_union(self, vid: VertexId, op: UnionOp) -> _Segment:
        parents = self.plan.inputs(vid)
        merged = _Segment(branches=[], name_parts=[op.alias or "union"])
        for index in range(len(parents)):
            parent_segment = self._take_parent(vid, index)
            if parent_segment.blocking is not None:
                self.boundary_vertices.add(parents[index])
                parent_segment = self._materialize(parent_segment)
            for branch in parent_segment.branches:
                branch.tag = 0  # union collapses tags
                merged.branches.append(branch)
        return merged

    def _compile_blocking(self, vid: VertexId, op: BlockingOperator) -> _Segment:
        parents = self.plan.inputs(vid)
        branches: list[MapBranch] = []
        for index in range(len(parents)):
            parent_segment = self._take_parent(vid, index)
            if parent_segment.blocking is not None:
                self.boundary_vertices.add(parents[index])
                parent_segment = self._materialize(parent_segment)
            for branch in parent_segment.branches:
                branch.tag = index
                branches.append(branch)
        return _Segment(
            branches=branches,
            blocking=op,
            blocking_schemas=self.plan.input_schemas_of(vid),
            name_parts=[op.alias or op.kind],
        )

    def _compile_limit(self, vid: VertexId, op: LimitOp) -> _Segment:
        segment = self._take_parent(vid, 0)
        single_reducer = (
            segment.blocking is not None
            and segment.blocking.preferred_reducers() == 1
            # A second LIMIT separated from the first by other operators
            # cannot be merged by taking the min; fall through to a
            # standalone limit job in that (rare) shape.
            and not segment.post_limit_pipeline
        )
        if single_reducer:
            # Fuse: slice the (ordered) reduce output of the current job.
            if segment.fused_limit is None:
                segment.fused_limit = op.limit
            else:
                segment.fused_limit = min(segment.fused_limit, op.limit)
            segment.name_parts.append(op.alias or "limit")
            return segment
        if segment.blocking is not None:
            self.boundary_vertices.add(self.plan.inputs(vid)[0])
            segment = self._materialize(segment)
        return _Segment(
            branches=segment.branches,
            blocking=op,
            blocking_schemas=self.plan.input_schemas_of(vid),
            name_parts=[op.alias or "limit"],
        )

    # -- segment plumbing -------------------------------------------------

    def _take_parent(self, vid: VertexId, input_index: int) -> _Segment:
        parent = self.plan.inputs(vid)[input_index]
        try:
            segment = self._segments[parent]
        except KeyError:
            raise CompileError(f"parent vertex {parent} not yet compiled") from None
        # Copy so sibling consumers never share mutable branch lists.
        return segment.copy()

    def _materialize(self, segment: _Segment) -> _Segment:
        """Finish ``segment`` into a temp file; return a fresh segment
        reading that file."""
        path = self._fresh_temp()
        self._finish(segment, path, temp=True)
        return _Segment(
            branches=[MapBranch(path, tag=0)],
            name_parts=list(segment.name_parts),
        )

    def _finish(self, segment: _Segment, output_path: str, temp: bool) -> None:
        if segment.blocking is None:
            reducers = 0
        else:
            reducers = (
                segment.blocking.preferred_reducers() or self.options.num_reducers
            )
        name = "+".join(segment.name_parts) or "job"
        spec = JobSpec(
            name=f"{name}@{len(self.graph.jobs)}",
            branches=segment.branches,
            blocking=segment.blocking,
            blocking_input_schemas=segment.blocking_schemas,
            reduce_pipeline=segment.reduce_pipeline,
            fused_limit=segment.fused_limit,
            post_limit_pipeline=segment.post_limit_pipeline,
            output_path=output_path,
            num_reducers=max(reducers, 0) if segment.blocking is None else reducers,
            output_is_temp=temp,
        )
        if self.options.enable_combiners:
            from repro.compiler.combiner import build_combiner

            spec.combiner = build_combiner(spec)
        self.graph.jobs.append(spec)

    def _fresh_temp(self) -> str:
        path = f"{self.options.temp_prefix}/part-{self._temp_counter:04d}"
        self._temp_counter += 1
        return path


def compile_plan(plan: LogicalPlan, options: CompileOptions | None = None) -> JobGraph:
    """Convenience wrapper: compile a validated plan to a job graph."""
    return MRCompiler(plan, options).compile()
