"""Compiled MapReduce job descriptions.

A :class:`JobGraph` is the unit ClusterBFT replicates: the *job
initiator* assigns each job a sub-graph id (sid) and submits ``r``
replicas of it (paper §4.1).  Specs are pure descriptions — execution
state lives in the MapReduce engine — so all replicas of a job can share
one spec object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import CompileError
from repro.dataflow.operators import BlockingOperator, StreamingOperator
from repro.dataflow.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.compiler.combiner import CombinerSpec


@dataclass
class PipelineOp:
    """One streaming operator with its input schema bound at compile time."""

    op: StreamingOperator
    input_schema: Schema


@dataclass
class MapBranch:
    """One input of a job: a DFS path plus the per-record map pipeline.

    ``tag`` is the blocking operator's input index (0 for the left side
    of a JOIN, 1 for the right; always 0 for single-input operators).
    """

    input_path: str
    tag: int
    pipeline: list[PipelineOp] = field(default_factory=list)


@dataclass
class JobSpec:
    """One MapReduce job compiled from a plan segment."""

    name: str
    branches: list[MapBranch]
    blocking: BlockingOperator | None  # None => map-only job
    blocking_input_schemas: list[Schema] = field(default_factory=list)
    reduce_pipeline: list[PipelineOp] = field(default_factory=list)
    fused_limit: int | None = None  # LIMIT fused into an ORDER job
    #: Streaming ops applied *after* the fused limit (e.g. a projection
    #: or verification point placed downstream of LIMIT in the plan).
    post_limit_pipeline: list[PipelineOp] = field(default_factory=list)
    output_path: str = ""
    num_reducers: int = 1
    output_is_temp: bool = False
    #: Map-side combining plan (algebraic GROUP+FOREACH jobs only).
    combiner: "CombinerSpec | None" = None

    @property
    def is_map_only(self) -> bool:
        return self.blocking is None

    def input_paths(self) -> list[str]:
        return [branch.input_path for branch in self.branches]

    def describe(self) -> str:
        ins = ", ".join(self.input_paths())
        kind = "map-only" if self.is_map_only else self.blocking.kind
        return f"{self.name}: [{ins}] -{kind}-> {self.output_path}"


@dataclass
class JobGraph:
    """All jobs compiled from one script, with data dependencies."""

    jobs: list[JobSpec] = field(default_factory=list)

    def internal_paths(self) -> set[str]:
        """Paths produced by jobs in this graph (replica-scoped at runtime,
        as opposed to pre-existing external inputs)."""
        return {job.output_path for job in self.jobs}

    def dependencies(self) -> dict[int, set[int]]:
        """Map job index -> indices of jobs it reads output from."""
        producers = {job.output_path: i for i, job in enumerate(self.jobs)}
        deps: dict[int, set[int]] = {i: set() for i in range(len(self.jobs))}
        for i, job in enumerate(self.jobs):
            for path in job.input_paths():
                if path in producers and producers[path] != i:
                    deps[i].add(producers[path])
        return deps

    def topological_order(self) -> list[int]:
        """Deterministic execution order of job indices."""
        deps = self.dependencies()
        remaining = set(range(len(self.jobs)))
        order: list[int] = []
        while remaining:
            ready = sorted(i for i in remaining if deps[i] <= set(order))
            if not ready:
                raise CompileError("job graph contains a dependency cycle")
            order.extend(ready)
            remaining -= set(ready)
        return order

    def final_outputs(self) -> list[str]:
        """User-visible store paths (non-temporary outputs)."""
        return [job.output_path for job in self.jobs if not job.output_is_temp]

    def describe(self) -> str:
        deps = self.dependencies()
        lines = []
        for i in self.topological_order():
            dep = f" (after {sorted(deps[i])})" if deps[i] else ""
            lines.append(f"#{i} {self.jobs[i].describe()}{dep}")
        return "\n".join(lines)
