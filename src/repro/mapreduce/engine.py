"""The MapReduce engine: heartbeat-driven job execution on the cluster.

Plays the role of Hadoop's JobTracker/TaskTrackers (the paper keeps
Hadoop's JobTracker as its *execution tracker* unmodified, §5.3).  The
engine is a discrete-event simulation around a *real* data path: tasks
actually execute their pipelines over real records — producing real
SHA-256 digests and really-corrupted outputs on faulty nodes — while
their *durations* come from the cost model.

Key reproducibility property: job output files are assembled in task
order (maps by (branch, block), reduces by partition), so the outputs of
correct replicas are byte-identical, intermediate files split into
identical blocks, and per-task digests are comparable across replicas.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.common.config import CostModelConfig
from repro.common.hashing import Digest
from repro.common.rng import RngRegistry
from repro.common.ids import JobId, NodeId, SubGraphId
from repro.common.errors import MapReduceError
from repro.common.records import Record
from repro.compiler.jobspec import JobSpec
from repro.mapreduce.cluster import Cluster, WorkerNode
from repro.mapreduce.metrics import (
    JobMetrics,
    TaskMetrics,
    publish_job,
    publish_task,
)
from repro.mapreduce.runtime import (
    MapTaskOutput,
    ReduceTaskOutput,
    execute_map_task,
    execute_reduce_task,
)
from repro.mapreduce.scheduler import TaskRef, TaskScheduler
from repro.simulation.events import EventLoop
from repro.storage.dfs import TrustedDFS
from repro.telemetry import DISABLED, Telemetry

PENDING = "pending"
RUNNING = "running"
DONE = "done"
OMITTED = "omitted"  # completion never reported (omission failure)


@dataclass(frozen=True)
class DigestReport:
    """One verification message from a worker node to the trusted tier."""

    sid: SubGraphId
    replica: int
    job_id: JobId
    vp_id: str
    task_label: str  # e.g. "m0.3" (branch 0, block 3) or "r2"
    node_id: NodeId
    digests: tuple[Digest, ...]
    record_count: int
    sent_at: float


@dataclass
class Split:
    branch_index: int
    block_index: int
    size_bytes: int
    locations: tuple[NodeId, ...]


@dataclass
class _TaskState:
    status: str = PENDING
    node: NodeId | None = None
    started_at: float = 0.0
    #: A backup attempt was launched (speculative execution).
    speculated: bool = False


class JobRun:
    """One replica execution of one compiled job."""

    def __init__(
        self,
        job_id: JobId,
        sid: SubGraphId,
        replica: int,
        spec: JobSpec,
        path_map: dict[str, str],
        scope: str,
        digest_sink: Callable[[DigestReport], None] | None = None,
        on_complete: Callable[["JobRun"], None] | None = None,
        total_replicas: int = 1,
        allowed_nodes: set[NodeId] | None = None,
        trace_attrs: dict | None = None,
        span_parent: int | None = None,
    ) -> None:
        self.job_id = job_id
        self.sid = sid
        self.replica = replica
        self.total_replicas = max(total_replicas, replica + 1)
        #: Explicit placement constraint (dummy-job probing, §3.3): when
        #: set, only these nodes may execute this run's tasks.
        self.allowed_nodes = set(allowed_nodes) if allowed_nodes is not None else None
        self.spec = spec
        self.path_map = dict(path_map)
        self.scope = scope
        self.digest_sink = digest_sink
        self.on_complete = on_complete

        self.splits: list[Split] = []
        self.map_states: list[_TaskState] = []
        self.reduce_states: list[_TaskState] = []
        self.map_results: dict[int, MapTaskOutput] = {}
        self.reduce_results: dict[int, ReduceTaskOutput] = {}
        self.metrics = JobMetrics(job_id=job_id)
        self.nodes_used: set[NodeId] = set()
        self.state = PENDING
        self.cancelled = False
        #: Durations of finished tasks by kind — the speculation baseline.
        self.completed_durations: dict[str, list[float]] = {"map": [], "reduce": []}
        self.speculative_attempts = 0
        #: Extra span attributes stamped by the submitter (attempt index,
        #: job_index, deps) — consumed by trace analysis.
        self.trace_attrs = dict(trace_attrs) if trace_attrs else {}
        #: Explicit parent for the job span (the submitting attempt span)
        #: so causal chains reach the run root; None = stack default.
        self.span_parent = span_parent
        #: Open telemetry span for this run (None when tracing is off).
        self.span = None

    # -- state queries ----------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state == RUNNING and not self.cancelled

    @property
    def num_reduces(self) -> int:
        return 0 if self.spec.is_map_only else self.spec.num_reducers

    def physical_path(self, logical: str) -> str:
        return self.path_map.get(logical, logical)

    def maps_finished(self) -> bool:
        return all(s.status == DONE for s in self.map_states)

    def all_finished(self) -> bool:
        return self.maps_finished() and all(
            s.status == DONE for s in self.reduce_states
        )

    def has_omitted_task(self) -> bool:
        return any(
            s.status == OMITTED
            for s in list(self.map_states) + list(self.reduce_states)
        )

    def ready_map_tasks(self, node_id: NodeId) -> tuple[list[int], list[int]]:
        """(data-local, remote) pending map task indices for a node."""
        local: list[int] = []
        remote: list[int] = []
        for index, state in enumerate(self.map_states):
            if state.status != PENDING:
                continue
            if node_id in self.splits[index].locations:
                local.append(index)
            else:
                remote.append(index)
        return local, remote

    def ready_reduce_tasks(self) -> list[int]:
        if not self.maps_finished():
            return []
        return [
            index
            for index, state in enumerate(self.reduce_states)
            if state.status == PENDING
        ]

    def has_ready_tasks(self) -> bool:
        if any(s.status == PENDING for s in self.map_states):
            return True
        return bool(self.ready_reduce_tasks())

    def mark_scheduled(self, kind: str, index: int, node_id: NodeId) -> None:
        states = self.map_states if kind == "map" else self.reduce_states
        states[index].status = RUNNING
        states[index].node = node_id
        self.nodes_used.add(node_id)

    def speculatable_tasks(
        self, now: float, slowdown: float, floor: float, exclude_node: NodeId
    ) -> list[tuple[str, int]]:
        """(kind, index) of attempts lagging far behind their finished
        siblings — candidates for a backup attempt on another node.

        With no finished sibling of the same kind (a slow node may hoard
        them all), fall back to the other kind's durations, then to the
        absolute ``floor``.
        """
        candidates: list[tuple[str, int]] = []
        for kind, states in (("map", self.map_states), ("reduce", self.reduce_states)):
            durations = (
                self.completed_durations[kind]
                or self.completed_durations["reduce" if kind == "map" else "map"]
            )
            if durations:
                ordered = sorted(durations)
                median = ordered[len(ordered) // 2]
                threshold = max(median * slowdown, 1e-9)
            else:
                threshold = floor
            for index, state in enumerate(states):
                if state.status not in (RUNNING, OMITTED) or state.speculated:
                    continue
                if state.node == exclude_node:
                    continue
                if now - state.started_at > threshold:
                    candidates.append((kind, index))
        return candidates

    def reduce_input(self, partition: int) -> list:
        """Shuffle: gather one partition from all maps in task order."""
        keyed = []
        for map_index in range(len(self.splits)):
            output = self.map_results[map_index]
            keyed.extend(output.partitions.get(partition, []))
        return keyed

    def assemble_output(self) -> list[Record]:
        """Final output records in deterministic task order.

        Missing entries only occur for empty-input jobs that completed
        without spawning tasks; their output is empty.
        """
        records: list[Record] = []
        if self.spec.is_map_only:
            for index in range(len(self.splits)):
                result = self.map_results.get(index)
                if result is not None:
                    records.extend(result.output_records)
        else:
            for index in range(self.num_reduces):
                result = self.reduce_results.get(index)
                if result is not None:
                    records.extend(result.output_records)
        return records


class MapReduceEngine:
    """Heartbeat-driven executor for :class:`JobRun`."""

    def __init__(
        self,
        loop: EventLoop,
        dfs: TrustedDFS,
        cluster: Cluster,
        scheduler: TaskScheduler,
        cost: CostModelConfig,
        rng: random.Random,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.loop = loop
        self.dfs = dfs
        self.cluster = cluster
        self.scheduler = scheduler
        if hasattr(scheduler, "set_cluster"):
            scheduler.set_cluster(cluster)
        self.cost = cost.validate()
        self.rng = rng
        self._run_seed = rng.randrange(1 << 62)
        # Named per-task streams; stream(name) seeds with
        # derive_seed(_run_seed, name), so this is bit-compatible with
        # constructing random.Random(derive_seed(...)) directly.
        self._task_rngs = RngRegistry(self._run_seed)
        self.runs: list[JobRun] = []
        self._heartbeats_running = False
        #: Last heartbeat receipt time per node — the crash detector's
        #: only input, mirroring Hadoop's TaskTracker expiry logic.
        self._last_heartbeat: dict[NodeId, float] = {}
        self._dead_nodes: set[NodeId] = set()
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self._tracer = self.telemetry.tracer
        scheduler.bind_telemetry(self.telemetry)
        dfs.set_read_fault(self._read_fault)

    def _read_fault(
        self, name: str, block_index: int, node_id: NodeId, records: list[Record]
    ) -> list[Record]:
        """DFS read-path hook: bit-rot as observed by a faulty node."""
        behavior = self.cluster.node(node_id).behavior
        if not behavior.corrupts_storage:
            return records
        rng = self._task_rngs.stream(f"storage/{node_id}/{name}#{block_index}")
        return behavior.corrupt_read(list(records), rng)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, run: JobRun) -> None:
        """Queue a job run; tasks start flowing on upcoming heartbeats."""
        self._compute_splits(run)
        run.metrics.submitted_at = self.loop.now
        run.state = RUNNING
        self.runs.append(run)
        if self._tracer.enabled:
            run.span = self._tracer.begin(
                "job",
                parent=run.span_parent,
                start=self.loop.now,
                job_id=run.job_id,
                sid=run.sid,
                replica=run.replica,
                maps=len(run.map_states),
                reduces=run.num_reduces,
                **run.trace_attrs,
            )
        if not run.map_states:
            # Degenerate job over an empty input: complete after the
            # fixed job-startup overhead.
            self.loop.schedule(
                self.cost.job_startup_seconds,
                lambda: self._complete_job(run),
                label=f"{run.job_id}:empty",
            )
            return
        self._ensure_heartbeats()

    def _compute_splits(self, run: JobRun) -> None:
        for branch_index, branch in enumerate(run.spec.branches):
            physical = run.physical_path(branch.input_path)
            if not self.dfs.exists(physical):
                raise MapReduceError(
                    f"input {physical!r} missing for job {run.job_id}"
                )
            info = self.dfs.file_info(physical)
            for block in info.blocks:
                run.splits.append(
                    Split(
                        branch_index=branch_index,
                        block_index=block.index,
                        size_bytes=block.size_bytes,
                        locations=block.locations,
                    )
                )
        run.map_states = [_TaskState() for _ in run.splits]
        run.reduce_states = [_TaskState() for _ in range(run.num_reduces)]

    def cancel(self, run: JobRun) -> None:
        """Abort a run: pending tasks are dropped; running tasks' effects
        are discarded when their completion events fire."""
        run.cancelled = True
        for state in list(run.map_states) + list(run.reduce_states):
            if state.status == PENDING:
                state.status = DONE  # never scheduled; nothing to free
        if run.span is not None:
            run.span.end(cancelled=True)

    # ------------------------------------------------------------------
    # heartbeats
    # ------------------------------------------------------------------

    def _ensure_heartbeats(self) -> None:
        if self._heartbeats_running:
            return
        self._heartbeats_running = True
        for node_id, offset in self.cluster.heartbeat_offsets().items():
            # Baseline the crash detector at each node's first expected
            # beat so an idle gap between jobs never reads as silence.
            self._last_heartbeat[node_id] = self.loop.now + offset
            self.loop.schedule(
                offset,
                lambda nid=node_id: self._heartbeat(nid),
                label=f"hb:{node_id}",
            )

    def _active_runs(self) -> list[JobRun]:
        return [run for run in self.runs if run.is_active]

    def _work_remains(self) -> bool:
        return any(
            run.is_active and not run.all_finished() for run in self.runs
        )

    def _heartbeat(self, node_id: NodeId) -> None:
        if not self._work_remains():
            self._heartbeats_running = False
            return
        node = self.cluster.node(node_id)
        if node.behavior.is_crashed():
            # Crash-stop: the node falls silent.  No reschedule — the
            # other nodes' heartbeats will notice via the crash timeout.
            node.alive = False
            if self._tracer.enabled:
                self._tracer.event("node.crashed", node=node_id)
            return
        self._last_heartbeat[node_id] = self.loop.now
        self._detect_crashes()
        if not node.excluded:
            schedulable = [
                run for run in self._active_runs() if run.has_ready_tasks()
            ]
            for ref in self.scheduler.assign(node, schedulable):
                self._start_task(node, ref)
            if self.cluster.config.speculative_execution and node.free_slots > 0:
                self._speculate(node)
        self.loop.schedule(
            self.cluster.config.heartbeat_period,
            lambda: self._heartbeat(node_id),
            label=f"hb:{node_id}",
        )

    # ------------------------------------------------------------------
    # crash detection (graceful degradation)
    # ------------------------------------------------------------------

    def _detect_crashes(self) -> None:
        """Declare nodes whose heartbeat has been silent past the
        timeout crashed and re-dispatch their in-flight tasks.

        Piggybacks on live nodes' heartbeats (no dedicated timer event),
        so crash-free runs schedule the exact same event sequence as
        before the detector existed.
        """
        timeout = self.cluster.config.crash_timeout
        if timeout <= 0:
            return
        now = self.loop.now
        for node_id in self.cluster.node_ids():
            if node_id in self._dead_nodes:
                continue
            last = self._last_heartbeat.get(node_id)
            if last is None or now - last <= timeout:
                continue
            self._handle_dead_node(node_id, silent_for=now - last)

    def _handle_dead_node(self, node_id: NodeId, silent_for: float) -> None:
        self._dead_nodes.add(node_id)
        node = self.cluster.node(node_id)
        node.alive = False
        self.cluster.exclude(node_id)
        redispatched = 0
        for run in self._active_runs():
            states = list(run.map_states) + list(run.reduce_states)
            for state in states:
                if state.node == node_id and state.status in (RUNNING, OMITTED):
                    state.status = PENDING
                    state.node = None
                    redispatched += 1
        node.running.clear()
        if self._tracer.enabled:
            self._tracer.event(
                "node.crash_detected",
                node=node_id,
                silent_for=silent_for,
                redispatched=redispatched,
            )
            self.telemetry.metrics.counter("nodes_crash_detected").inc()
            if redispatched:
                self.telemetry.metrics.counter(
                    "tasks_redispatched", reason="crash"
                ).inc(redispatched)

    def evacuate_node(self, node_id: NodeId) -> int:
        """Re-dispatch a live node's in-flight tasks (online migration).

        The crash path minus the death: the node keeps heartbeating,
        but its RUNNING/OMITTED attempts go back to PENDING so the
        scheduler places them elsewhere.  An old attempt that still
        completes first wins the task — same first-completion-wins rule
        as speculation — and the digest quorum judges its content, so
        migrating away from a merely *suspect* region never discards
        verified-correct work.  Returns the number of attempts moved.
        """
        redispatched = 0
        for run in self._active_runs():
            states = list(run.map_states) + list(run.reduce_states)
            for state in states:
                if state.node == node_id and state.status in (RUNNING, OMITTED):
                    state.status = PENDING
                    state.node = None
                    redispatched += 1
        if redispatched and self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "tasks_redispatched", reason="migration"
            ).inc(redispatched)
        return redispatched

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def _speculate(self, node: WorkerNode) -> None:
        """Launch backup attempts for straggling tasks (Hadoop-style
        speculative execution): rescues slow — and even silently hung —
        attempts without waiting for the verifier timeout."""
        slowdown = self.cluster.config.speculation_slowdown
        floor = self.cluster.config.speculation_floor
        for run in self._active_runs():
            if node.free_slots <= 0:
                return
            if not self.scheduler.eligible(node, run):
                continue
            for kind, index in run.speculatable_tasks(
                self.loop.now, slowdown, floor, exclude_node=node.node_id
            ):
                if node.free_slots <= 0:
                    return
                states = run.map_states if kind == "map" else run.reduce_states
                states[index].speculated = True
                states[index].status = RUNNING  # rescues OMITTED attempts
                run.nodes_used.add(node.node_id)
                run.speculative_attempts += 1
                if self._tracer.enabled:
                    self._tracer.event(
                        "speculate",
                        job_id=run.job_id,
                        kind=kind,
                        index=index,
                        node=node.node_id,
                    )
                    self.telemetry.metrics.counter(
                        "speculative_attempts", kind=kind
                    ).inc()
                self.scheduler.note_assignment(
                    node, TaskRef(run, kind, index)
                )
                self._start_task(node, TaskRef(run, kind, index), backup=True)

    def _start_task(self, node: WorkerNode, ref: TaskRef, backup: bool = False) -> None:
        run = ref.run
        attempt_tag = "~backup" if backup else ""
        task_key = f"{run.job_id}:{ref.kind}{ref.index}{attempt_tag}"
        node.start_task(task_key)
        behavior = node.behavior
        behavior.note_task_start()
        # Deterministic per-task stream: independent of scheduling order,
        # stable across replicas only in structure (node id + task key),
        # so a probabilistic fault on one node cannot accidentally strike
        # the same record in every replica.
        node_rng = self._task_rngs.stream(f"{node.node_id}/{task_key}")

        states = run.map_states if ref.kind == "map" else run.reduce_states
        state = states[ref.index]
        launched_at = self.loop.now
        if not backup:
            state.started_at = launched_at

        if ref.kind == "map":
            result, task_metrics = self._execute_map(node, run, ref.index, node_rng)
        else:
            result, task_metrics = self._execute_reduce(node, run, ref.index, node_rng)

        duration = task_metrics.duration_seconds
        if behavior.omits_completion(node_rng):
            # The node hangs: slot stays occupied, completion never fires
            # (unless speculation later launches a backup attempt).
            if state.status != DONE:
                state.status = OMITTED
            if self._tracer.enabled:
                self._tracer.event(
                    "task.omitted",
                    job_id=run.job_id,
                    kind=ref.kind,
                    index=ref.index,
                    node=node.node_id,
                )
            return

        def complete() -> None:
            if not node.alive:
                return  # the node crash-stopped; its completion is lost
            node.finish_task(task_key)
            if run.cancelled or state.status == DONE:
                return  # a sibling attempt already delivered this task
            state.status = DONE
            if ref.kind == "map":
                run.map_results[ref.index] = result
            else:
                run.reduce_results[ref.index] = result
            run.metrics.absorb_task(task_metrics)
            run.completed_durations[ref.kind].append(task_metrics.duration_seconds)
            task_span = None
            if self._tracer.enabled:
                task_span = self._emit_task_span(
                    run, ref, node, task_metrics, launched_at, backup
                )
                publish_task(self.telemetry.metrics, task_metrics)
            self._emit_digests(run, ref, result, node, node_rng, task_span)
            if run.all_finished():
                self._complete_job(run)

        self.loop.schedule(duration, complete, label=task_key)

    def _emit_task_span(
        self,
        run: JobRun,
        ref: TaskRef,
        node: WorkerNode,
        task_metrics: TaskMetrics,
        launched_at: float,
        backup: bool,
    ):
        """Record the completed task attempt as a span (with shuffle and
        digest-hashing sub-spans placed at their approximate offsets:
        shuffle precedes compute, hashing rides alongside it).  Returns
        the task span so the digest path can parent to it."""
        span = self._tracer.begin(
            "task",
            parent=run.span,
            start=launched_at,
            job_id=run.job_id,
            sid=run.sid,
            replica=run.replica,
            attempt=run.trace_attrs.get("attempt", 0),
            node=node.node_id,
            kind=ref.kind,
            index=ref.index,
            speculative=backup,
        )
        if task_metrics.shuffle_seconds:
            self._tracer.emit(
                "task.shuffle",
                start=launched_at,
                end=launched_at + task_metrics.shuffle_seconds,
                parent=span,
                node=node.node_id,
                bytes=task_metrics.file_read,
            )
        if task_metrics.digest_seconds:
            digest_start = launched_at + task_metrics.shuffle_seconds
            self._tracer.emit(
                "task.digest",
                start=digest_start,
                end=digest_start + task_metrics.digest_seconds,
                parent=span,
                node=node.node_id,
                bytes=task_metrics.digest_bytes,
            )
        span.end(end=self.loop.now)
        return span

    def _execute_map(
        self, node: WorkerNode, run: JobRun, index: int, node_rng: random.Random
    ) -> tuple[MapTaskOutput, TaskMetrics]:
        split = run.splits[index]
        branch = run.spec.branches[split.branch_index]
        physical = run.physical_path(branch.input_path)
        block = self.dfs.read_block(
            physical, split.block_index, scope=run.scope, node_id=node.node_id
        )
        result = execute_map_task(
            run.spec,
            split.branch_index,
            block.records,
            block.size_bytes,
            node.behavior,
            node_rng,
        )
        digest_bytes = sum(t.bytes_hashed for t in result.taps)
        digest_records = sum(t.record_count for t in result.taps)
        compute = result.bytes_in / self.cost.map_throughput_bps
        hashing = (
            digest_bytes / self.cost.digest_bps
            + digest_records * self.cost.digest_per_record_seconds
        )
        read_time = result.bytes_in / self.cost.dfs_read_bps
        if run.spec.is_map_only:
            write_time = result.bytes_out / self.cost.dfs_write_bps
            file_write = 0
        else:
            write_time = result.bytes_out / self.cost.shuffle_throughput_bps
            file_write = result.bytes_out
        # Speed profile divides the whole attempt (heterogeneous
        # hardware); 1.0 is exact under IEEE division, so flat clusters
        # stay byte-identical.
        duration = (
            self.cost.task_startup_seconds + read_time + compute + hashing + write_time
        ) * node.behavior.slowdown() / node.speed
        metrics = TaskMetrics(
            task_id=f"{run.job_id}_m_{index:06d}",
            node_id=node.node_id,
            kind="map",
            hdfs_read=result.bytes_in,
            # hdfs_write for map-only outputs is charged once at job
            # completion when the assembled file is written.
            file_write=file_write,
            digest_bytes=digest_bytes,
            records_in=result.records_in,
            records_out=result.records_out,
            cpu_seconds=(compute + hashing) * node.behavior.slowdown() / node.speed,
            duration_seconds=duration,
            digest_seconds=hashing * node.behavior.slowdown() / node.speed,
        )
        return result, metrics

    def _execute_reduce(
        self, node: WorkerNode, run: JobRun, index: int, node_rng: random.Random
    ) -> tuple[ReduceTaskOutput, TaskMetrics]:
        keyed = run.reduce_input(index)
        if node.behavior.corrupts_storage and keyed:
            # Shuffle spills live on the reducer's local disk in Hadoop:
            # bit-rot on this node's read path hits them just like DFS
            # blocks.  Same rng scheme as the DFS hook, so the fault is
            # independent of scheduling order.
            rng = self._task_rngs.stream(
                f"storage/{node.node_id}/shuffle/{run.job_id}#{index}"
            )
            raw = [record for _, _, record in keyed]
            observed = node.behavior.corrupt_read(raw, rng)
            if observed is not raw:
                keyed = [
                    (key, tag, new_record)
                    for (key, tag, _), new_record in zip(keyed, observed)
                ]
        result = execute_reduce_task(run.spec, keyed, node.behavior, node_rng)
        digest_bytes = sum(t.bytes_hashed for t in result.taps)
        digest_records = sum(t.record_count for t in result.taps)
        shuffle_time = result.bytes_in / self.cost.shuffle_throughput_bps
        compute = result.bytes_in / self.cost.reduce_throughput_bps
        hashing = (
            digest_bytes / self.cost.digest_bps
            + digest_records * self.cost.digest_per_record_seconds
        )
        write_time = result.bytes_out / self.cost.dfs_write_bps
        duration = (
            self.cost.task_startup_seconds + shuffle_time + compute + hashing + write_time
        ) * node.behavior.slowdown() / node.speed
        metrics = TaskMetrics(
            task_id=f"{run.job_id}_r_{index:06d}",
            node_id=node.node_id,
            kind="reduce",
            # hdfs_write is charged once at job completion.
            file_read=result.bytes_in,
            digest_bytes=digest_bytes,
            records_in=result.records_in,
            records_out=result.records_out,
            cpu_seconds=(compute + hashing) * node.behavior.slowdown() / node.speed,
            duration_seconds=duration,
            shuffle_seconds=shuffle_time * node.behavior.slowdown() / node.speed,
            digest_seconds=hashing * node.behavior.slowdown() / node.speed,
        )
        return result, metrics

    def _emit_digests(
        self,
        run: JobRun,
        ref: TaskRef,
        result: MapTaskOutput | ReduceTaskOutput,
        node: WorkerNode,
        node_rng: random.Random,
        task_span=None,
    ) -> None:
        if run.digest_sink is None or not result.taps:
            return
        if node.behavior.omits_digest(node_rng):
            if self._tracer.enabled:
                self._tracer.event(
                    "digest.omitted", job_id=run.job_id, node=node.node_id
                )
            return
        if self._tracer.enabled:
            self.telemetry.metrics.counter(
                "digest_reports_sent", node=node.node_id
            ).inc(len(result.taps))
        if ref.kind == "map":
            split = run.splits[ref.index]
            label = f"m{split.branch_index}.{split.block_index}"
        else:
            label = f"r{ref.index}"
        # Cross-region digests pay the WAN on top of the LAN hop (the
        # trusted tier lives in the control region); +0.0 on a flat
        # cluster keeps the delay bit-identical.
        config = self.cluster.config
        delay = self.cost.digest_network_seconds + config.wan_seconds(
            node.region, config.control_region()
        )
        tracer = self._tracer
        causal = self.telemetry.causal and tracer.enabled
        for tap in result.taps:
            report = DigestReport(
                sid=run.sid,
                replica=run.replica,
                job_id=run.job_id,
                vp_id=tap.vp_id,
                task_label=label,
                node_id=node.node_id,
                digests=tuple(tap.digests),
                record_count=tap.record_count,
                sent_at=self.loop.now,
            )
            send_ref = 0
            if causal:
                # Digest reports bypass SimNetwork (direct loop hop to
                # the trusted tier), so the causal send/recv pair is
                # emitted by hand, parented to the producing task span.
                if task_span is not None:
                    tracer.push_context(task_span.span_id)
                try:
                    send_ref = tracer.event(
                        "digest.send",
                        sid=run.sid,
                        replica=run.replica,
                        job_id=run.job_id,
                        vp_id=tap.vp_id,
                        node=node.node_id,
                    )
                finally:
                    if task_span is not None:
                        tracer.pop_context()

            def deliver(r=report, ref_id=send_ref) -> None:
                if ref_id:
                    recv_ref = tracer.event(
                        "digest.recv",
                        mid=ref_id,
                        sid=r.sid,
                        replica=r.replica,
                        vp_id=r.vp_id,
                    )
                    tracer.push_context(recv_ref)
                    try:
                        run.digest_sink(r)
                    finally:
                        tracer.pop_context()
                else:
                    run.digest_sink(r)

            self.loop.schedule(
                delay,
                deliver,
                label=f"digest:{run.job_id}:{tap.vp_id}",
            )

    def _complete_job(self, run: JobRun) -> None:
        if run.cancelled or run.state == DONE:
            return
        run.state = DONE
        records = run.assemble_output()
        physical_out = run.physical_path(run.spec.output_path)
        if self.dfs.exists(physical_out):
            self.dfs.delete(physical_out)
        self.dfs.write_file(physical_out, records, scope=run.scope)
        run.metrics.finished_at = self.loop.now
        run.metrics.hdfs_write += sum(r.size_bytes() for r in records)
        if run.span is not None:
            run.span.end(
                end=self.loop.now,
                nodes=len(run.nodes_used),
                speculative_attempts=run.speculative_attempts,
            )
        if self.telemetry.enabled:
            publish_job(self.telemetry.metrics, run.metrics)
        if run.on_complete is not None:
            run.on_complete(run)
