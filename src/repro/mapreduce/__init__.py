"""In-process MapReduce engine driven by the discrete-event simulator."""

from repro.mapreduce.cluster import Cluster, WorkerNode
from repro.mapreduce.engine import DigestReport, JobRun, MapReduceEngine
from repro.mapreduce.metrics import JobMetrics, RunMetrics, TaskMetrics
from repro.mapreduce.scheduler import (
    ClusterBFTScheduler,
    NaiveScheduler,
    TaskRef,
    TaskScheduler,
)

__all__ = [
    "Cluster",
    "ClusterBFTScheduler",
    "DigestReport",
    "JobMetrics",
    "JobRun",
    "MapReduceEngine",
    "NaiveScheduler",
    "RunMetrics",
    "TaskMetrics",
    "TaskRef",
    "TaskScheduler",
    "WorkerNode",
]
