"""Task schedulers.

The paper replaces Hadoop's scheduler with one that (§5.3):

* never collocates tasks from two *replicas of the same job* on one node
  (a single faulty node could otherwise corrupt more than one replica
  and defeat the f+1 digest quorum), and
* deliberately *overlaps different jobs* on a node — "cause as many
  intersections as there are resource units in a node" (§4.2) — so the
  fault analyzer can intersect job clusters to isolate faulty nodes.

:class:`NaiveScheduler` has neither property and exists as the ablation
baseline (and to demonstrate the safety violation in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.ids import NodeId, SubGraphId
from repro.mapreduce.cluster import WorkerNode
from repro.telemetry import DISABLED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mapreduce.engine import JobRun


@dataclass(frozen=True)
class TaskRef:
    """A schedulable task of a particular run."""

    run: "JobRun"
    kind: str  # "map" | "reduce"
    index: int

    def __repr__(self) -> str:
        return f"TaskRef({self.run.job_id}, {self.kind}{self.index})"


class TaskScheduler:
    """Base scheduler: replies to one node's heartbeat with tasks."""

    #: Bound by the engine; decision counters only — scheduling must
    #: behave identically whether or not telemetry observes it.
    telemetry = DISABLED
    #: Suspicion quarantine (soft degradation below eviction): these
    #: nodes receive no new tasks but keep their cluster membership.
    #: Class-level empty default keeps schedulers constructed before
    #: this feature byte-identical; ``quarantine`` promotes it to an
    #: instance set on first use.
    quarantined: frozenset[NodeId] | set[NodeId] = frozenset()

    def bind_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry if telemetry is not None else DISABLED

    def quarantine(self, node_id: NodeId) -> None:
        """Stop assigning new tasks to ``node_id``."""
        if not isinstance(self.quarantined, set):
            self.quarantined = set(self.quarantined)
        self.quarantined.add(node_id)

    def release(self, node_id: NodeId) -> None:
        """Lift a quarantine (e.g. after reinstatement)."""
        if isinstance(self.quarantined, set):
            self.quarantined.discard(node_id)

    def is_quarantined(self, node_id: NodeId) -> bool:
        return node_id in self.quarantined

    def record_assignments(
        self, node: WorkerNode, assignments: list[TaskRef]
    ) -> None:
        if not self.telemetry.enabled or not assignments:
            return
        metrics = self.telemetry.metrics
        scheduler = type(self).__name__
        for ref in assignments:
            metrics.counter(
                "scheduler_assignments",
                node=node.node_id,
                kind=ref.kind,
                scheduler=scheduler,
            ).inc()

    def assign(self, node: WorkerNode, runs: list["JobRun"]) -> list[TaskRef]:
        raise NotImplementedError

    def eligible(self, node: WorkerNode, run: "JobRun") -> bool:
        """May this node run tasks of this run at all?"""
        if node.node_id in self.quarantined:
            return False
        return self.placement_allows(node, run)

    @staticmethod
    def placement_allows(node: WorkerNode, run: "JobRun") -> bool:
        """Explicit placement constraints (probe jobs) bind everywhere."""
        return run.allowed_nodes is None or node.node_id in run.allowed_nodes

    def note_assignment(self, node: WorkerNode, ref: TaskRef) -> None:
        """Hook invoked by the engine when an assignment is made."""


class NaiveScheduler(TaskScheduler):
    """FIFO, locality-aware, replica-oblivious (plain Hadoop behaviour)."""

    def assign(self, node: WorkerNode, runs: list["JobRun"]) -> list[TaskRef]:
        assignments: list[TaskRef] = []
        free = node.free_slots
        while free > 0:
            ref = _first_task(node, runs, lambda run: self.eligible(node, run))
            if ref is None:
                break
            assignments.append(ref)
            ref.run.mark_scheduled(ref.kind, ref.index, node.node_id)
            free -= 1
        self.record_assignments(node, assignments)
        return assignments


class ClusterBFTScheduler(TaskScheduler):
    """Replica-anti-collocating, cluster-overlapping scheduler.

    Anti-collocation must hold for the whole lifetime of a sub-graph
    ("tasks from more than one replica of a job are not scheduled on a
    same node at any point of time", §5.3): a node that ran replica 0
    yesterday and replica 1 today would let a single faulty node corrupt
    two replicas.  A naive first-touch pin satisfies that but can starve
    late replicas (early replicas' tasks touch every node).  We instead
    statically partition nodes among a sid's replicas by node ordinal
    modulo the replication degree: safe, deterministic, starvation-free
    whenever ``nodes >= r``.

    On a multi-region cluster the partition becomes *region-homed*:
    replica ``k`` lives in live region ``k % len(live_regions)`` and is
    partitioned among that region's active nodes together with the
    other replicas homed there.  With two or more live regions this
    places the replicas of every verification group in at least two
    regions (so ``r >= 3`` never concentrates in one region), and a
    region going dark — excluded or quarantined wholesale — simply
    shrinks the live list, re-homing its replicas elsewhere.  Flat
    clusters take the original modulo path unchanged.
    """

    def __init__(self) -> None:
        #: (node, sid) -> replica observed there.  The pin — not the
        #: modulo partition — is what enforces safety: once a node has
        #: touched replica k of a sid it may never serve another replica
        #: of that sid, even if the partition shifts under exclusions.
        self._pins: dict[tuple[NodeId, SubGraphId], int] = {}
        self._cluster = None
        #: Trace-feedback (``repro run --schedule-from-trace``): a
        #: :class:`~repro.telemetry.straggler.StragglerProfile` from a
        #: prior run.  None (default) keeps the ordinal partition
        #: byte-identical to profile-free scheduling.
        self._straggler_profile = None

    def set_cluster(self, cluster) -> None:
        """Let the partition skip excluded nodes (otherwise an eviction
        could starve the replica whose ordinal slice it emptied)."""
        self._cluster = cluster

    def set_straggler_profile(self, profile) -> None:
        """Re-partition flat clusters with stragglers concentrated in
        the highest replica slot.

        Verification needs only the fastest ``f+1`` of ``r`` replicas
        to agree — the slowest replica's tasks drain off the critical
        path.  Packing the profile's straggler nodes into one replica's
        block therefore keeps every *other* replica straggler-free, so
        the digest quorum (and with it the attempt's makespan) stops
        waiting on known-slow machines.  Anti-collocation is preserved:
        the block partition still maps each node to exactly one slot,
        and the first-touch pins guard it regardless.
        """
        self._straggler_profile = profile

    @staticmethod
    def _node_ordinal(node_id: NodeId) -> int:
        tail = node_id.rsplit("_", 1)[-1]
        try:
            return int(tail)
        except ValueError:
            return sum(node_id.encode()) % 7919

    def _partition_ordinal(self, node: WorkerNode) -> int:
        if self._cluster is not None:
            active = [
                node_id
                for node_id in self._cluster.node_ids()
                if not self._cluster.node(node_id).excluded
            ]
            try:
                return active.index(node.node_id)
            except ValueError:
                pass
        return self._node_ordinal(node.node_id)

    def _live_regions(self) -> list[str]:
        """Declared regions with at least one schedulable node, in
        declaration order ([] on a flat cluster)."""
        if self._cluster is None:
            return []
        live = []
        for region in self._cluster.regions():
            for node_id in self._cluster.region_node_ids(region):
                node = self._cluster.node(node_id)
                if not node.excluded and node_id not in self.quarantined:
                    live.append(region)
                    break
        return live

    def _region_ordinal(self, node: WorkerNode) -> int:
        """Index of ``node`` among its region's non-excluded nodes."""
        active = [
            node_id
            for node_id in self._cluster.region_node_ids(node.region)
            if not self._cluster.node(node_id).excluded
        ]
        try:
            return active.index(node.node_id)
        except ValueError:
            return self._node_ordinal(node.node_id)

    def eligible(self, node: WorkerNode, run: "JobRun") -> bool:
        if node.node_id in self.quarantined:
            return False
        if not self.placement_allows(node, run):
            return False
        pin = self._pins.get((node.node_id, run.sid))
        if pin is not None:
            return pin == run.replica
        if run.allowed_nodes is not None:
            # Probe jobs place replicas explicitly; the pin above still
            # guards against a node serving two replicas of one sid.
            return True
        total = max(run.total_replicas, 1)
        live = self._live_regions()
        if len(live) > 1:
            home = live[run.replica % len(live)]
            if node.region != home:
                return False
            # Replicas sharing the home region partition its nodes
            # among themselves, preserving anti-collocation in-region.
            homed = [k for k in range(total) if live[k % len(live)] == home]
            slot = homed.index(run.replica % total)
            return self._region_ordinal(node) % len(homed) == slot
        slot = self._straggler_slot(node, total)
        if slot is not None:
            return slot == run.replica % total
        return self._partition_ordinal(node) % total == run.replica % total

    def _straggler_slot(self, node: WorkerNode, total: int) -> int | None:
        """Replica slot under the straggler-aware block partition, or
        None when the profile (or cluster shape) does not apply."""
        profile = self._straggler_profile
        if profile is None or not profile.stragglers or self._cluster is None:
            return None
        active = [
            node_id
            for node_id in self._cluster.node_ids()
            if not self._cluster.node(node_id).excluded
        ]
        if node.node_id not in active or len(active) < total:
            # Fewer nodes than replicas: the ordinal partition's
            # wrap-around behaviour is the only workable split.
            return None
        straggling = {
            node_id for node_id in profile.stragglers if node_id in active
        }
        if not straggling:
            return None
        # Deterministic: active keeps cluster declaration order within
        # each half, stragglers move to the tail — the tail block maps
        # to the highest replica slot.
        ordered = [n for n in active if n not in straggling] + [
            n for n in active if n in straggling
        ]
        position = ordered.index(node.node_id)
        return (position * total) // len(ordered)

    def note_assignment(self, node: WorkerNode, ref: TaskRef) -> None:
        self._pins[(node.node_id, ref.run.sid)] = ref.run.replica

    def assign(self, node: WorkerNode, runs: list["JobRun"]) -> list[TaskRef]:
        assignments: list[TaskRef] = []
        free = node.free_slots
        jobs_on_node = {
            run.job_id for run in runs if node.node_id in run.nodes_used
        }
        while free > 0:
            # Overlap strategy: prefer a run whose job is not yet
            # represented on this node, then fall back to any run.
            ref = _first_task(
                node,
                runs,
                lambda run: self.eligible(node, run)
                and run.job_id not in jobs_on_node,
            )
            if ref is None:
                ref = _first_task(node, runs, lambda run: self.eligible(node, run))
            if ref is None:
                break
            self.note_assignment(node, ref)
            jobs_on_node.add(ref.run.job_id)
            assignments.append(ref)
            ref.run.mark_scheduled(ref.kind, ref.index, node.node_id)
            free -= 1
        self.record_assignments(node, assignments)
        return assignments


class FairShareScheduler(TaskScheduler):
    """Deficit-round-robin fairness across tenants over an inner scheduler.

    The service tier (:mod:`repro.service`) multiplexes many tenants'
    runs on one engine; without fairness a tenant submitting wide jobs
    first would monopolize every heartbeat's free slots.  This wrapper
    reorders the runnable runs each heartbeat by per-tenant *deficit
    counter* — each tenant with runnable work earns ``quantum`` credit
    per assignment round, each task assigned spends one credit, and the
    most-credited tenant goes first — then delegates the actual task
    choice (anti-collocation pins, overlap preference, locality) to the
    wrapped scheduler unchanged.  Credit is capped so a long-idle tenant
    cannot bank unbounded priority and starve everyone on return.

    Optional per-tenant *slot budgets* bound concurrent task slots: a
    tenant at/over budget is skipped for the round (re-eligible next
    heartbeat, so the overshoot is at most one node's free slots).

    Quarantine state lives in the wrapped scheduler — there is exactly
    one quarantine set per deployment, shared by every tenant (the
    cross-run payoff of paper Fig. 7).
    """

    def __init__(
        self,
        inner: TaskScheduler | None = None,
        quantum: float = 1.0,
        max_credit: float = 16.0,
    ) -> None:
        self.inner = inner if inner is not None else ClusterBFTScheduler()
        self.quantum = quantum
        self.max_credit = max_credit
        #: script_id -> tenant name (runs with no owner share tenant "").
        self._owner: dict[str, str] = {}
        self._deficit: dict[str, float] = {}
        self._budget: dict[str, int] = {}
        self._engine = None

    # -- shared-state delegation (one quarantine set, one cluster) ------

    def bind_telemetry(self, telemetry) -> None:
        super().bind_telemetry(telemetry)
        self.inner.bind_telemetry(telemetry)

    def set_cluster(self, cluster) -> None:
        if hasattr(self.inner, "set_cluster"):
            self.inner.set_cluster(cluster)

    def set_straggler_profile(self, profile) -> None:
        """Straggler avoidance applies service-wide: the profile lands
        in the wrapped scheduler, where the partition decision lives."""
        if hasattr(self.inner, "set_straggler_profile"):
            self.inner.set_straggler_profile(profile)

    @property
    def quarantined(self):  # type: ignore[override]
        return self.inner.quarantined

    def quarantine(self, node_id: NodeId) -> None:
        self.inner.quarantine(node_id)

    def release(self, node_id: NodeId) -> None:
        self.inner.release(node_id)

    def is_quarantined(self, node_id: NodeId) -> bool:
        return self.inner.is_quarantined(node_id)

    def eligible(self, node: WorkerNode, run: "JobRun") -> bool:
        return self.inner.eligible(node, run)

    def note_assignment(self, node: WorkerNode, ref: TaskRef) -> None:
        self.inner.note_assignment(node, ref)

    # -- tenancy registration ------------------------------------------

    def register_owner(self, script_id: str, tenant: str) -> None:
        """Attribute runs whose sid starts with ``script_id`` to ``tenant``."""
        self._owner[script_id] = tenant
        self._deficit.setdefault(tenant, 0.0)

    def set_slot_budget(self, tenant: str, slots: int | None) -> None:
        """Cap ``tenant`` at ``slots`` concurrent task slots (None lifts)."""
        if slots is None:
            self._budget.pop(tenant, None)
        else:
            self._budget[tenant] = slots

    def observe_engine(self, engine) -> None:
        """Bind the engine whose run list backs slot-budget accounting."""
        self._engine = engine

    def tenant_of(self, run: "JobRun") -> str:
        return self._owner.get(run.sid.split(".", 1)[0], "")

    def _slots_in_use(self) -> dict[str, int]:
        """Concurrent task slots per tenant, counted from engine state.

        Derived on demand rather than tracked incrementally: crashes,
        cancellations and omissions all mutate task states outside any
        scheduler callback, and a drifting counter here would silently
        unbalance tenants.  OMITTED tasks count — they occupy a node
        slot forever, which is exactly the omission failure mode.
        """
        in_use: dict[str, int] = {}
        if self._engine is None:
            return in_use
        for run in self._engine.runs:
            if not run.is_active:
                continue
            busy = sum(
                1
                for state in list(run.map_states) + list(run.reduce_states)
                if state.status in ("running", "omitted")
            )
            if busy:
                tenant = self.tenant_of(run)
                in_use[tenant] = in_use.get(tenant, 0) + busy
        return in_use

    # -- the fair-share round ------------------------------------------

    def assign(self, node: WorkerNode, runs: list["JobRun"]) -> list[TaskRef]:
        order: list[str] = []
        by_tenant: dict[str, list["JobRun"]] = {}
        for run in runs:
            tenant = self.tenant_of(run)
            if tenant not in by_tenant:
                by_tenant[tenant] = []
                order.append(tenant)
            by_tenant[tenant].append(run)
        if len(order) <= 1:
            # Single tenant (or the single-run controller): plain
            # delegation, no credit bookkeeping to perturb.
            return self.inner.assign(node, runs)

        in_use = self._slots_in_use()
        contenders: list[str] = []
        for tenant in order:
            budget = self._budget.get(tenant)
            if budget is not None and in_use.get(tenant, 0) >= budget:
                continue  # at budget: sit this round out
            self._deficit[tenant] = min(
                self._deficit.get(tenant, 0.0) + self.quantum, self.max_credit
            )
            contenders.append(tenant)
        # Most-credited first; ties break by tenant name so the round
        # order never depends on dict iteration history.
        contenders.sort(key=lambda t: (-self._deficit.get(t, 0.0), t))
        ordered_runs = [run for tenant in contenders for run in by_tenant[tenant]]
        refs = self.inner.assign(node, ordered_runs)
        for ref in refs:
            tenant = self.tenant_of(ref.run)
            self._deficit[tenant] = self._deficit.get(tenant, 0.0) - 1.0
        return refs


def _first_task(node: WorkerNode, runs: list["JobRun"], run_filter) -> TaskRef | None:
    """First ready task over runs in submission order; map tasks prefer
    blocks with a replica on this node (data locality)."""
    for run in runs:
        if not run_filter(run) or not run.is_active:
            continue
        local, remote = run.ready_map_tasks(node.node_id)
        if local:
            return TaskRef(run, "map", local[0])
        if remote:
            return TaskRef(run, "map", remote[0])
        reduces = run.ready_reduce_tasks()
        if reduces:
            return TaskRef(run, "reduce", reduces[0])
    return None
