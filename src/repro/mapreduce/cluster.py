"""Worker cluster model: nodes, slots, heartbeats.

Mirrors Hadoop 1.x's structure (paper §5.1): a node offers a number of
*task slots* (the paper's resource units, typically 3–4 per 4-core
node), and announces free capacity via periodic heartbeat messages to
the (trusted) execution tracker, which replies with task assignments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.config import ClusterConfig
from repro.common.ids import NodeId, TaskId
from repro.common.rng import RngRegistry
from repro.faults.behaviors import CORRECT, NodeBehavior
from repro.faults.injection import FaultPlan


@dataclass
class WorkerNode:
    """One virtual computation unit in the untrusted tier."""

    node_id: NodeId
    slots: int
    behavior: NodeBehavior = CORRECT
    running: set[TaskId] = field(default_factory=set)
    #: Tasks whose completion was omitted still occupy a slot forever —
    #: that is precisely the omission failure mode.
    excluded: bool = False
    #: False once the node crash-stopped: it no longer heartbeats and
    #: its in-flight task completions never fire.  Distinct from
    #: ``excluded`` (the trusted tier's inclusion list): a crash is a
    #: fact about the node, an exclusion is a decision about it.
    alive: bool = True
    #: Geo placement: the named region hosting this node ('' on a flat
    #: single-LAN cluster, the seed behaviour).
    region: str = ""
    #: Hardware heterogeneity: simulated task durations divide by this
    #: (2.0 = twice as fast).  1.0 is exact under IEEE division, so a
    #: flat cluster stays byte-identical.
    speed: float = 1.0

    @property
    def free_slots(self) -> int:
        return max(self.slots - len(self.running), 0)

    @property
    def is_faulty(self) -> bool:
        return self.behavior.faulty

    def start_task(self, task_id: TaskId) -> None:
        self.running.add(task_id)

    def finish_task(self, task_id: TaskId) -> None:
        self.running.discard(task_id)


class Cluster:
    """The untrusted computation tier: a fixed set of worker nodes.

    Node membership is controlled by the trusted tier's inclusion list
    (paper §4.2): nodes whose suspicion exceeds the threshold are marked
    ``excluded`` and stop receiving work.
    """

    def __init__(
        self,
        config: ClusterConfig,
        fault_plan: FaultPlan | None = None,
        rng: random.Random | None = None,
    ) -> None:
        config.validate()
        self.config = config
        # Default stream derives from the RngRegistry's seed scheme, not
        # an ad-hoc Random(0): a cluster built without an explicit rng
        # must match one wired through a default registry, or the same
        # deployment would behave differently depending on which
        # constructor path built it.
        self.rng = rng if rng is not None else RngRegistry().stream("cluster")
        fault_plan = fault_plan or FaultPlan()
        self.nodes: dict[NodeId, WorkerNode] = {}
        for index in range(config.num_nodes):
            node_id = f"node_{index:04d}"
            self.nodes[node_id] = WorkerNode(
                node_id=node_id,
                slots=config.slots_per_node,
                behavior=fault_plan.behavior_for(node_id),
                region=config.region_of_index(index),
                speed=config.speed_of_index(index),
            )

    def __len__(self) -> int:
        return len(self.nodes)

    def region_of(self, node_id: NodeId) -> str:
        return self.nodes[node_id].region

    def regions(self) -> list[str]:
        """Declared region names in declaration order ([] when flat)."""
        return [str(entry[0]) for entry in self.config.regions]

    def region_node_ids(self, region: str) -> list[NodeId]:
        return sorted(
            node_id
            for node_id, node in self.nodes.items()
            if node.region == region
        )

    def node(self, node_id: NodeId) -> WorkerNode:
        return self.nodes[node_id]

    def node_ids(self) -> list[NodeId]:
        return sorted(self.nodes)

    def active_nodes(self) -> list[WorkerNode]:
        return [n for n in self.nodes.values() if not n.excluded]

    def faulty_node_ids(self) -> set[NodeId]:
        return {n.node_id for n in self.nodes.values() if n.is_faulty}

    def exclude(self, node_id: NodeId) -> None:
        """Remove a node from the inclusion list (suspicion threshold hit)."""
        self.nodes[node_id].excluded = True

    def reinstate(self, node_id: NodeId) -> None:
        """Administrator re-inserts a re-imaged node (paper §4.2)."""
        node = self.nodes[node_id]
        node.excluded = False
        node.behavior = CORRECT

    def total_slots(self) -> int:
        return sum(n.slots for n in self.active_nodes())

    def heartbeat_offsets(self) -> dict[NodeId, float]:
        """Initial heartbeat phase per node.  Staggered so the execution
        tracker sees a steady stream rather than synchronized bursts."""
        period = self.config.heartbeat_period
        offsets = {}
        ids = self.node_ids()
        for index, node_id in enumerate(ids):
            if self.config.heartbeat_stagger:
                offsets[node_id] = period * index / max(len(ids), 1)
            else:
                offsets[node_id] = 0.0
        return offsets
