"""Task execution logic: the pure data-path of map and reduce tasks.

The engine (``repro.mapreduce.engine``) decides *when* and *where* a
task runs; this module decides *what* it computes.  Everything here is
deterministic given its inputs, which is what makes replica digests
comparable:

* reduce keys are grouped and emitted in canonical key order;
* verification taps sort their observed stream canonically before
  chunked digesting, so chunk boundaries agree across replicas;
* job outputs are assembled in task-index order by the engine, so
  intermediate files are byte-identical across correct replicas and
  block/split structure matches.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass, field

from repro.common.hashing import Digest, StreamingDigest, sha256
from repro.common.records import Record, encode_record, encode_value
from repro.compiler.jobspec import JobSpec, PipelineOp
from repro.dataflow.operators import VerifyOp
from repro.faults.behaviors import NodeBehavior

#: A shuffled record: (reduce key, input tag, record).
KeyedRecord = tuple[object, int, Record]


def partition_for(key: object, num_reducers: int) -> int:
    """Deterministic hash partitioner (stable across processes/replicas)."""
    digest = sha256(encode_value(key if isinstance(key, tuple) else (key,)))
    return int.from_bytes(digest[:4], "big") % num_reducers


@dataclass
class TapResult:
    """Digests observed at one verification point within one task."""

    vp_id: str
    digests: list[Digest]
    record_count: int
    bytes_hashed: int


class _Tap:
    """Collects the records passing a VerifyOp inside a task."""

    def __init__(self, vp_id: str, chunk_records: int) -> None:
        self.vp_id = vp_id
        self.chunk_records = chunk_records
        self.encodings: list[bytes] = []
        self.records: list[Record] = []

    def observe(self, record: Record) -> None:
        self.records.append(record)

    def finalize(self) -> TapResult:
        # Sort canonically so chunk boundaries agree across replicas.
        ordered = sorted(self.records, key=encode_record)
        streaming = StreamingDigest(chunk_size=self.chunk_records)
        streaming.update_all(ordered)
        streaming.finalize()
        bytes_hashed = sum(r.size_bytes() for r in ordered)
        return TapResult(
            vp_id=self.vp_id,
            digests=streaming.all_digests(),
            record_count=len(ordered),
            bytes_hashed=bytes_hashed,
        )


def run_pipeline(
    records: list[Record], pipeline: list[PipelineOp]
) -> tuple[list[Record], list[TapResult]]:
    """Stream ``records`` through a compiled pipeline, tapping VerifyOps."""
    taps: dict[int, _Tap] = {}
    for index, stage in enumerate(pipeline):
        if isinstance(stage.op, VerifyOp):
            taps[index] = _Tap(stage.op.vp_id, stage.op.chunk_records)

    current = list(records)
    for index, stage in enumerate(pipeline):
        if index in taps:
            tap = taps[index]
            for record in current:
                tap.observe(record)
            continue  # VerifyOp is identity on the stream
        next_records: list[Record] = []
        for record in current:
            next_records.extend(stage.op.process(record, stage.input_schema))
        current = next_records
    return current, [taps[i].finalize() for i in sorted(taps)]


@dataclass
class MapTaskOutput:
    """Result of one map task."""

    output_records: list[Record] = field(default_factory=list)  # map-only jobs
    partitions: dict[int, list[KeyedRecord]] = field(default_factory=dict)
    taps: list[TapResult] = field(default_factory=list)
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    omitted: bool = False


def execute_map_task(
    spec: JobSpec,
    branch_index: int,
    records: list[Record],
    bytes_in: int,
    behavior: NodeBehavior,
    rng: random.Random,
) -> MapTaskOutput:
    """Run one map task over one input block."""
    branch = spec.branches[branch_index]
    records = behavior.corrupt_records(records, rng)
    out_records, taps = run_pipeline(records, branch.pipeline)

    result = MapTaskOutput(
        taps=taps,
        records_in=len(records),
        records_out=len(out_records),
        bytes_in=bytes_in,
    )
    if spec.blocking is None:
        # Equivocation point: taps above digested the honest stream; a
        # faulty node may still persist something else entirely.
        out_records = behavior.corrupt_stored_output(out_records, rng)
        result.output_records = out_records
        result.bytes_out = sum(r.size_bytes() for r in out_records)
        return result

    partitions: dict[int, list[KeyedRecord]] = defaultdict(list)
    bytes_out = 0
    if spec.combiner is not None:
        # Map-side combining: one partial record per key instead of the
        # whole bag (COUNT/SUM/MIN/MAX are order-insensitive, so no sort
        # is needed for replica determinism).
        per_key: dict = defaultdict(list)
        for record in out_records:
            key = spec.blocking.reduce_key(
                record, branch.tag, spec.blocking_input_schemas
            )
            per_key[key].append(record)
        for key, group in per_key.items():
            partial = spec.combiner.initial_partial(group)
            part = partition_for(key, spec.num_reducers)
            partitions[part].append((key, branch.tag, partial))
            bytes_out += partial.size_bytes() + len(encode_value(key))
        result.records_out = len(per_key)
    else:
        for record in out_records:
            key = spec.blocking.reduce_key(
                record, branch.tag, spec.blocking_input_schemas
            )
            part = partition_for(key, spec.num_reducers)
            partitions[part].append((key, branch.tag, record))
            bytes_out += record.size_bytes() + len(encode_value(key))
    result.partitions = dict(partitions)
    result.bytes_out = bytes_out
    return result


@dataclass
class ReduceTaskOutput:
    """Result of one reduce task."""

    output_records: list[Record] = field(default_factory=list)
    taps: list[TapResult] = field(default_factory=list)
    records_in: int = 0
    records_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    omitted: bool = False


def execute_reduce_task(
    spec: JobSpec,
    keyed_records: list[KeyedRecord],
    behavior: NodeBehavior,
    rng: random.Random,
) -> ReduceTaskOutput:
    """Run one reduce task over its shuffled partition."""
    bytes_in = sum(
        record.size_bytes() + len(encode_value(key))
        for key, _, record in keyed_records
    )
    # A commission-faulty reducer computes on tampered values.
    raw_records = [record for _, _, record in keyed_records]
    corrupted = behavior.corrupt_records(raw_records, rng)
    keyed_records = [
        (key, tag, new_record)
        for (key, tag, _), new_record in zip(keyed_records, corrupted)
    ]

    groups: dict = defaultdict(list)
    for key, tag, record in keyed_records:
        groups[key].append((tag, record))

    reduced: list[Record] = []
    if spec.combiner is not None:
        # Merge map-side partials and produce the FOREACH's output
        # directly; the remaining pipeline (after that FOREACH) applies
        # as usual.
        for key in sorted(
            groups, key=lambda k: encode_value(k if isinstance(k, tuple) else (k,))
        ):
            partials = [record for _, record in groups[key]]
            merged = spec.combiner.merge(partials)
            reduced.append(spec.combiner.finalize(key, merged))
        pipeline = spec.reduce_pipeline[1:]
    else:
        for key in sorted(
            groups, key=lambda k: encode_value(k if isinstance(k, tuple) else (k,))
        ):
            reduced.extend(
                spec.blocking.reduce(key, groups[key], spec.blocking_input_schemas)
            )
        pipeline = spec.reduce_pipeline

    out_records, taps = run_pipeline(reduced, pipeline)
    if spec.fused_limit is not None:
        out_records = out_records[: spec.fused_limit]
    if spec.post_limit_pipeline:
        out_records, post_taps = run_pipeline(out_records, spec.post_limit_pipeline)
        taps = taps + post_taps
    # Equivocation point: digests cover the honest stream; the stored
    # output may still be tampered (caught only by commit-time checks).
    out_records = behavior.corrupt_stored_output(out_records, rng)

    return ReduceTaskOutput(
        output_records=out_records,
        taps=taps,
        records_in=len(keyed_records),
        records_out=len(out_records),
        bytes_in=bytes_in,
        bytes_out=sum(r.size_bytes() for r in out_records),
    )
