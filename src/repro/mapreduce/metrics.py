"""Per-job and per-run metrics.

Paper Table 3 reports five rows per configuration — latency, CPU time,
local-file read/write bytes, and HDFS write bytes — as multipliers over
an unreplicated baseline.  These counters mirror Hadoop's counter groups
closely enough to regenerate that table:

* ``hdfs_read/write`` — bytes through the trusted DFS;
* ``file_read/write`` — local intermediate I/O (map-output spill on the
  write side, shuffle fetch + merge on the read side);
* ``cpu_seconds`` — summed simulated task compute time (excludes queue
  wait, includes digest hashing);
* ``latency`` derives from submit/finish timestamps kept by the engine.

The additive counter fields are declared once in
:data:`COUNTER_FIELDS`; both aggregation levels fold over it, and the
``publish_*`` helpers emit the same fields into a telemetry
:class:`~repro.telemetry.registry.MetricsRegistry` — one field list,
three consumers, no duplicated per-field code.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Additive byte/record counters shared by task, job, and run levels.
COUNTER_FIELDS = (
    "hdfs_read",
    "hdfs_write",
    "file_read",
    "file_write",
    "digest_bytes",
    "records_in",
    "records_out",
)

#: Duration histogram buckets (simulated seconds) for task/job metrics.
DURATION_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


@dataclass
class TaskMetrics:
    """Metrics for one task attempt."""

    task_id: str = ""
    node_id: str = ""
    kind: str = ""  # "map" | "reduce"
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    records_in: int = 0
    records_out: int = 0
    cpu_seconds: float = 0.0
    duration_seconds: float = 0.0
    #: Sub-phase durations (already slowdown-scaled) for span tracing.
    shuffle_seconds: float = 0.0
    digest_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Aggregated metrics for one job replica execution."""

    job_id: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    records_in: int = 0
    records_out: int = 0
    cpu_seconds: float = 0.0
    map_tasks: int = 0
    reduce_tasks: int = 0

    @property
    def latency(self) -> float:
        return max(self.finished_at - self.submitted_at, 0.0)

    def absorb_task(self, task: TaskMetrics) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(task, name))
        self.cpu_seconds += task.cpu_seconds
        if task.kind == "map":
            self.map_tasks += 1
        elif task.kind == "reduce":
            self.reduce_tasks += 1


@dataclass
class RunMetrics:
    """Metrics across a whole script run (all jobs, all replicas)."""

    latency: float = 0.0
    cpu_seconds: float = 0.0
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    records_in: int = 0
    records_out: int = 0
    jobs: int = 0
    verification_comparisons: int = 0
    reruns: int = 0

    def absorb_job(self, job: JobMetrics) -> None:
        for name in COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(job, name))
        self.cpu_seconds += job.cpu_seconds
        self.jobs += 1

    def ratios_over(self, baseline: "RunMetrics") -> dict[str, float]:
        """Table 3-style multipliers over an unreplicated baseline."""

        def ratio(ours: float, theirs: float) -> float:
            return ours / theirs if theirs else float("inf")

        return {
            "latency": ratio(self.latency, baseline.latency),
            "cpu": ratio(self.cpu_seconds, baseline.cpu_seconds),
            "file_read": ratio(self.file_read, baseline.file_read),
            "file_write": ratio(self.file_write, baseline.file_write),
            "hdfs_write": ratio(self.hdfs_write, baseline.hdfs_write),
        }


# ----------------------------------------------------------------------
# telemetry emission
# ----------------------------------------------------------------------


def publish_task(registry, task: TaskMetrics) -> None:
    """Emit one task attempt's counters into a metrics registry."""
    for name in COUNTER_FIELDS:
        value = getattr(task, name)
        if value:
            registry.counter(f"mapreduce_{name}", kind=task.kind).inc(value)
    registry.counter("mapreduce_tasks_completed", kind=task.kind).inc()
    registry.histogram(
        "task_duration_seconds", buckets=DURATION_BUCKETS, kind=task.kind
    ).observe(task.duration_seconds)
    registry.histogram(
        "task_cpu_seconds", buckets=DURATION_BUCKETS, kind=task.kind
    ).observe(task.cpu_seconds)


def publish_job(registry, job: JobMetrics) -> None:
    """Emit one job replica's aggregates into a metrics registry."""
    registry.counter("mapreduce_jobs_completed").inc()
    registry.counter("mapreduce_map_tasks").inc(job.map_tasks)
    registry.counter("mapreduce_reduce_tasks").inc(job.reduce_tasks)
    registry.histogram("job_latency_seconds").observe(job.latency)


def publish_run(registry, run: "RunMetrics", mode: str) -> None:
    """Emit one script run's totals into a metrics registry."""
    registry.counter("runs_total", mode=mode).inc()
    registry.counter("run_reruns_total", mode=mode).inc(run.reruns)
    registry.counter("verification_comparisons_total").inc(
        run.verification_comparisons
    )
    registry.histogram("run_latency_seconds", mode=mode).observe(run.latency)
