"""Per-job and per-run metrics.

Paper Table 3 reports five rows per configuration — latency, CPU time,
local-file read/write bytes, and HDFS write bytes — as multipliers over
an unreplicated baseline.  These counters mirror Hadoop's counter groups
closely enough to regenerate that table:

* ``hdfs_read/write`` — bytes through the trusted DFS;
* ``file_read/write`` — local intermediate I/O (map-output spill on the
  write side, shuffle fetch + merge on the read side);
* ``cpu_seconds`` — summed simulated task compute time (excludes queue
  wait, includes digest hashing);
* ``latency`` derives from submit/finish timestamps kept by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Metrics for one task attempt."""

    task_id: str = ""
    node_id: str = ""
    kind: str = ""  # "map" | "reduce"
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    records_in: int = 0
    records_out: int = 0
    cpu_seconds: float = 0.0
    duration_seconds: float = 0.0


@dataclass
class JobMetrics:
    """Aggregated metrics for one job replica execution."""

    job_id: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    records_in: int = 0
    records_out: int = 0
    cpu_seconds: float = 0.0
    map_tasks: int = 0
    reduce_tasks: int = 0

    @property
    def latency(self) -> float:
        return max(self.finished_at - self.submitted_at, 0.0)

    def absorb_task(self, task: TaskMetrics) -> None:
        self.hdfs_read += task.hdfs_read
        self.hdfs_write += task.hdfs_write
        self.file_read += task.file_read
        self.file_write += task.file_write
        self.digest_bytes += task.digest_bytes
        self.records_in += task.records_in
        self.records_out += task.records_out
        self.cpu_seconds += task.cpu_seconds
        if task.kind == "map":
            self.map_tasks += 1
        elif task.kind == "reduce":
            self.reduce_tasks += 1


@dataclass
class RunMetrics:
    """Metrics across a whole script run (all jobs, all replicas)."""

    latency: float = 0.0
    cpu_seconds: float = 0.0
    hdfs_read: int = 0
    hdfs_write: int = 0
    file_read: int = 0
    file_write: int = 0
    digest_bytes: int = 0
    jobs: int = 0
    verification_comparisons: int = 0
    reruns: int = 0

    def absorb_job(self, job: JobMetrics) -> None:
        self.cpu_seconds += job.cpu_seconds
        self.hdfs_read += job.hdfs_read
        self.hdfs_write += job.hdfs_write
        self.file_read += job.file_read
        self.file_write += job.file_write
        self.digest_bytes += job.digest_bytes
        self.jobs += 1

    def ratios_over(self, baseline: "RunMetrics") -> dict[str, float]:
        """Table 3-style multipliers over an unreplicated baseline."""

        def ratio(ours: float, theirs: float) -> float:
            return ours / theirs if theirs else float("inf")

        return {
            "latency": ratio(self.latency, baseline.latency),
            "cpu": ratio(self.cpu_seconds, baseline.cpu_seconds),
            "file_read": ratio(self.file_read, baseline.file_read),
            "file_write": ratio(self.file_write, baseline.file_write),
            "hdfs_write": ratio(self.hdfs_write, baseline.hdfs_write),
        }
