"""Schemas for dataflow operators.

A :class:`Schema` names (and loosely types) the fields of the records
flowing out of an operator, mirroring Pig's ``AS (user:int, ...)``
clauses.  Field resolution supports plain names, positional ``$k``
references, and Pig's ``alias::name`` disambiguation for join outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SchemaError

# Loose type tags, Pig-style.  ``BAG`` holds a canonically-sorted tuple of
# Records (the output of GROUP); ``ANY`` disables checking for that field.
INT = "int"
LONG = "long"
FLOAT = "float"
DOUBLE = "double"
CHARARRAY = "chararray"
BOOLEAN = "boolean"
BAG = "bag"
TUPLE = "tuple"
ANY = "any"

_NUMERIC = {INT, LONG, FLOAT, DOUBLE}
VALID_TYPES = _NUMERIC | {CHARARRAY, BOOLEAN, BAG, TUPLE, ANY}


def is_numeric(type_tag: str) -> bool:
    return type_tag in _NUMERIC


@dataclass(frozen=True)
class Field:
    """A named, typed schema slot.

    ``inner`` carries the element schema of a BAG field (set by GROUP),
    letting FOREACH expressions like ``B.temp`` resolve inside the bag.
    """

    name: str
    type: str = ANY
    inner: "Schema | None" = None

    def __post_init__(self) -> None:
        if self.type not in VALID_TYPES:
            raise SchemaError(f"unknown field type: {self.type!r}")
        if self.inner is not None and self.type != BAG:
            raise SchemaError("inner schema only valid on BAG fields")

    def qualified(self, alias: str) -> "Field":
        """Return this field renamed to ``alias::name`` (join outputs)."""
        if "::" in self.name:
            return self
        return Field(name=f"{alias}::{self.name}", type=self.type, inner=self.inner)


class Schema:
    """An ordered collection of :class:`Field`.

    >>> s = Schema.of(("user", INT), ("follower", INT))
    >>> s.index_of("follower")
    1
    >>> s.index_of("$0")
    0
    """

    __slots__ = ("fields",)

    def __init__(self, fields: list[Field] | tuple[Field, ...]) -> None:
        self.fields: tuple[Field, ...] = tuple(fields)

    @classmethod
    def of(cls, *specs: tuple[str, str] | str) -> "Schema":
        """Build a schema from ``(name, type)`` pairs or bare names."""
        fields = []
        for spec in specs:
            if isinstance(spec, str):
                fields.append(Field(spec))
            else:
                name, type_tag = spec
                fields.append(Field(name, type_tag))
        return cls(fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def __hash__(self) -> int:
        # lint: allow FLOW003 process-local dict/set membership only; schemas are compared structurally, never digested by hash()
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.type}" for f in self.fields)
        return f"Schema({inner})"

    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def describe(self) -> str:
        """Compact Pig-style rendering for diagnostics: ``(user:int, …)``."""
        return "(" + ", ".join(f"{f.name}:{f.type}" for f in self.fields) + ")"

    def field(self, index: int) -> Field:
        return self.fields[index]

    def index_of(self, ref: str) -> int:
        """Resolve a field reference to a positional index.

        Accepts ``$k`` positional refs, exact names, unqualified matches
        against ``alias::name`` fields (when unambiguous), and qualified
        ``alias::name`` refs.
        """
        if ref.startswith("$"):
            try:
                index = int(ref[1:])
            except ValueError:
                raise SchemaError(f"bad positional reference: {ref!r}") from None
            if not 0 <= index < len(self.fields):
                raise SchemaError(
                    f"positional reference {ref} out of range for {self!r}"
                )
            return index
        # Exact match first (must be unique).
        exact = [i for i, field in enumerate(self.fields) if field.name == ref]
        if len(exact) == 1:
            return exact[0]
        if len(exact) > 1:
            raise SchemaError(
                f"ambiguous field reference {ref!r} in {self!r}; qualify it"
            )
        # Unqualified match against alias::name.
        matches = [
            i for i, field in enumerate(self.fields)
            if field.name.split("::")[-1] == ref
        ]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SchemaError(
                f"ambiguous field reference {ref!r} in {self!r}; qualify it"
            )
        raise SchemaError(f"no field {ref!r} in {self!r}")

    def type_of(self, ref: str) -> str:
        return self.fields[self.index_of(ref)].type

    def has_field(self, ref: str) -> bool:
        try:
            self.index_of(ref)
            return True
        except SchemaError:
            return False

    def qualify(self, alias: str) -> "Schema":
        """Qualify every field as ``alias::name`` (used for join inputs)."""
        return Schema([f.qualified(alias) for f in self.fields])

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.fields + other.fields)

    def project(self, indexes: list[int]) -> "Schema":
        return Schema([self.fields[i] for i in indexes])

    def rename(self, names: list[str]) -> "Schema":
        """Return a copy with new names (same arity and types)."""
        if len(names) != len(self.fields):
            raise SchemaError(
                f"rename arity mismatch: {len(names)} names for {len(self.fields)} fields"
            )
        return Schema(
            [
                Field(name, field.type, field.inner)
                for name, field in zip(names, self.fields)
            ]
        )
