"""Logical-plan operators (the Pig Latin subset ClusterBFT instruments).

Operators are *descriptions*: they carry no input references (the
:class:`~repro.dataflow.plan.LogicalPlan` owns the DAG) and no schemas
(the plan infers those).  Each operator provides:

* ``derive_schema(input_schemas)`` — output schema inference;
* per-record semantics (``process``) for streaming operators, used both
  by the local interpreter and by map/reduce pipelines;
* grouping semantics (``reduce_key`` / ``reduce``) for blocking
  operators, which force a MapReduce shuffle boundary.

Determinism note: every blocking operator sorts the records of a key
group by canonical encoding before producing output, implementing the
paper's §5.4 fix ("ordering the intermediate mapper output") so replica
digests match bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import PlanError, SchemaError
from repro.common.records import Record, encode_record
from repro.dataflow import schema as sc
from repro.dataflow.expressions import Expr, FieldRef
from repro.dataflow.schema import Field, Schema


def canonical_sort(records: list[Record]) -> list[Record]:
    """Sort records by canonical encoding (stable across replicas)."""
    return sorted(records, key=encode_record)


class Operator:
    """Base class for logical operators."""

    #: True when the operator needs a full view of its input partitioned
    #: by key — i.e. compiles to the reduce side of a MapReduce job.
    is_blocking = False
    #: True for LOAD (plan source) and STORE (plan sink) respectively.
    is_source = False
    is_sink = False
    arity = 1  # number of inputs

    def __init__(self, alias: str = "") -> None:
        self.alias = alias
        #: 1-based script line that produced this operator (set by the
        #: parser); ``None`` for programmatically-built plans.  The
        #: static plan checker uses it to point diagnostics at source.
        self.source_line: int | None = None

    @property
    def kind(self) -> str:
        return type(self).__name__.removesuffix("Op").lower()

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:
        alias = f" {self.alias}" if self.alias else ""
        return f"<{type(self).__name__}{alias}>"


class StreamingOperator(Operator):
    """Per-record operator; may emit 0..n records per input record."""

    def process(self, record: Record, input_schema: Schema) -> list[Record]:
        raise NotImplementedError


class BlockingOperator(Operator):
    """Operator requiring a shuffle: key extraction + per-key reduction."""

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        raise NotImplementedError

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        """Produce output records for one key group.

        ``tagged`` pairs each record with its input index (relevant for
        JOIN); implementations must not rely on arrival order.
        """
        raise NotImplementedError

    def preferred_reducers(self) -> int | None:
        """Forced reducer count (e.g. 1 for global ORDER), or None."""
        return None


# ----------------------------------------------------------------------
# sources / sinks
# ----------------------------------------------------------------------


class LoadOp(Operator):
    """LOAD 'path' AS (schema)."""

    is_source = True
    arity = 0

    def __init__(self, path: str, load_schema: Schema, alias: str = "") -> None:
        super().__init__(alias)
        self.path = path
        self.load_schema = load_schema

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if input_schemas:
            raise PlanError("LOAD takes no inputs")
        return self.load_schema

    def describe(self) -> str:
        return f"load '{self.path}'"


class StoreOp(Operator):
    """STORE alias INTO 'path'."""

    is_sink = True

    def __init__(self, path: str, alias: str = "") -> None:
        super().__init__(alias)
        self.path = path

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("STORE takes exactly one input")
        return input_schemas[0]

    def describe(self) -> str:
        return f"store '{self.path}'"


# ----------------------------------------------------------------------
# streaming operators
# ----------------------------------------------------------------------


class FilterOp(StreamingOperator):
    """FILTER alias BY predicate."""

    def __init__(self, predicate: Expr, alias: str = "") -> None:
        super().__init__(alias)
        self.predicate = predicate

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("FILTER takes exactly one input")
        schema = input_schemas[0]
        for ref in self.predicate.references():
            schema.index_of(ref)  # raises SchemaError on bad reference
        return schema

    def process(self, record: Record, input_schema: Schema) -> list[Record]:
        if self.predicate.evaluate(record, input_schema):
            return [record]
        return []


@dataclass(frozen=True)
class Projection:
    """One GENERATE clause: an expression and its output field name."""

    expr: Expr
    name: str = ""

    def resolved_name(self) -> str:
        return self.name or self.expr.output_name()


class ForeachOp(StreamingOperator):
    """FOREACH alias GENERATE expr [AS name], ...

    Works both on flat records and on grouped records (where aggregate
    functions consume the bag field) — in either case it is one output
    record per input record, so it remains a streaming operator.
    """

    def __init__(self, projections: list[Projection], alias: str = "") -> None:
        super().__init__(alias)
        if not projections:
            raise PlanError("FOREACH needs at least one projection")
        self.projections = list(projections)

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("FOREACH takes exactly one input")
        schema = input_schemas[0]
        fields = []
        for projection in self.projections:
            for ref in projection.expr.references():
                schema.index_of(ref)
            type_tag = projection.expr.output_type(schema)
            inner = None
            if type_tag == sc.BAG and isinstance(projection.expr, FieldRef):
                inner = schema.field(schema.index_of(projection.expr.name)).inner
            fields.append(Field(projection.resolved_name(), type_tag, inner))
        return Schema(fields)

    def process(self, record: Record, input_schema: Schema) -> list[Record]:
        values = [p.expr.evaluate(record, input_schema) for p in self.projections]
        return [Record(tuple(values))]


class VerifyOp(StreamingOperator):
    """Identity operator marking a verification point.

    Injected by :mod:`repro.core.instrument`; the MapReduce runtime taps
    the record stream here to compute SHA-256 digests for the verifier.
    ``vp_id`` identifies the verification point across all replicas.
    """

    def __init__(self, vp_id: str, chunk_records: int = 0, alias: str = "") -> None:
        super().__init__(alias)
        self.vp_id = vp_id
        self.chunk_records = chunk_records

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("VERIFY takes exactly one input")
        return input_schemas[0]

    def process(self, record: Record, input_schema: Schema) -> list[Record]:
        return [record]

    def describe(self) -> str:
        return f"verify[{self.vp_id}]"


class UnionOp(StreamingOperator):
    """UNION a, b, ... — concatenation of same-arity relations.

    Streaming: each input record passes through unchanged; the plan
    allows multiple inputs (arity checked at schema derivation).
    """

    arity = 2  # minimum; plan allows more

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) < 2:
            raise PlanError("UNION takes at least two inputs")
        first = input_schemas[0]
        for other in input_schemas[1:]:
            if len(other) != len(first):
                raise SchemaError(
                    f"UNION arity mismatch: {len(first)} vs {len(other)}"
                )
        return first

    def process(self, record: Record, input_schema: Schema) -> list[Record]:
        return [record]


# ----------------------------------------------------------------------
# blocking operators
# ----------------------------------------------------------------------


def _key_value(exprs: list[Expr], record: Record, schema: Schema) -> Any:
    """Evaluate grouping keys; single expr yields a scalar, several a tuple
    (Pig's GROUP key convention)."""
    if len(exprs) == 1:
        return exprs[0].evaluate(record, schema)
    return tuple(e.evaluate(record, schema) for e in exprs)


class GroupOp(BlockingOperator):
    """GROUP alias BY key — output records are (group, bag)."""

    is_blocking = True

    def __init__(self, key_exprs: list[Expr], alias: str = "", bag_name: str = "") -> None:
        super().__init__(alias)
        if not key_exprs:
            raise PlanError("GROUP needs at least one key expression")
        self.key_exprs = list(key_exprs)
        # Pig names the grouped bag after the *input* relation's alias.
        self.bag_name = bag_name

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("GROUP takes exactly one input")
        schema = input_schemas[0]
        for expr in self.key_exprs:
            for ref in expr.references():
                schema.index_of(ref)
        if len(self.key_exprs) == 1:
            key_type = self.key_exprs[0].output_type(schema)
        else:
            key_type = sc.TUPLE
        bag_name = self.bag_name or self.alias or "bag"
        return Schema(
            [Field("group", key_type), Field(bag_name, sc.BAG, schema)]
        )

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        return _key_value(self.key_exprs, record, input_schemas[0])

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        bag = tuple(canonical_sort([record for _, record in tagged]))
        return [Record((key, bag))]


class JoinOp(BlockingOperator):
    """JOIN left BY k1, right BY k2 — inner equi-join."""

    is_blocking = True
    arity = 2

    def __init__(
        self,
        left_keys: list[Expr],
        right_keys: list[Expr],
        alias: str = "",
        input_aliases: tuple[str, str] | None = None,
    ) -> None:
        super().__init__(alias)
        if not left_keys or len(left_keys) != len(right_keys):
            raise PlanError("JOIN needs matching key lists for both inputs")
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.input_aliases = input_aliases

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 2:
            raise PlanError("JOIN takes exactly two inputs")
        left, right = input_schemas
        for expr in self.left_keys:
            for ref in expr.references():
                left.index_of(ref)
        for expr in self.right_keys:
            for ref in expr.references():
                right.index_of(ref)
        if self.input_aliases:
            # Qualify as alias::name so duplicate field names stay
            # addressable downstream (Pig's join-output convention).
            left = left.qualify(self.input_aliases[0])
            right = right.qualify(self.input_aliases[1])
        return left.concat(right)

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        exprs = self.left_keys if input_index == 0 else self.right_keys
        return _key_value(exprs, record, input_schemas[input_index])

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        left_rows = canonical_sort([r for tag, r in tagged if tag == 0])
        right_rows = canonical_sort([r for tag, r in tagged if tag == 1])
        out = []
        for left in left_rows:
            for right in right_rows:
                out.append(left.concat(right))
        return out


class DistinctOp(BlockingOperator):
    """DISTINCT alias — deduplicate whole records."""

    is_blocking = True

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("DISTINCT takes exactly one input")
        return input_schemas[0]

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        return record.fields

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        return [tagged[0][1]]


@dataclass(frozen=True)
class SortKey:
    """One ORDER BY column: field reference plus direction."""

    ref: str
    ascending: bool = True


class OrderOp(BlockingOperator):
    """ORDER alias BY key [DESC], ... — global sort (single reducer)."""

    is_blocking = True

    #: Sentinel key: all records shuffle to one group for a global sort.
    GLOBAL_KEY = "__order__"

    def __init__(self, sort_keys: list[SortKey], alias: str = "") -> None:
        super().__init__(alias)
        if not sort_keys:
            raise PlanError("ORDER needs at least one sort key")
        self.sort_keys = list(sort_keys)

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("ORDER takes exactly one input")
        schema = input_schemas[0]
        for key in self.sort_keys:
            schema.index_of(key.ref)
        return schema

    def preferred_reducers(self) -> int | None:
        return 1

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        return self.GLOBAL_KEY

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        schema = input_schemas[0]
        records = canonical_sort([record for _, record in tagged])
        # Stable multi-key sort: apply keys right-to-left.
        for sort_key in reversed(self.sort_keys):
            index = schema.index_of(sort_key.ref)
            records.sort(
                key=lambda r, i=index: _null_safe_key(r[i]),
                reverse=not sort_key.ascending,
            )
        return records


def _null_safe_key(value: Any) -> tuple:
    """Sort key tolerating None and mixed numeric/string columns."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, str(value))


class LimitOp(BlockingOperator):
    """LIMIT alias n — first n records (after any upstream ORDER)."""

    is_blocking = True

    def __init__(self, limit: int, alias: str = "") -> None:
        super().__init__(alias)
        if limit < 0:
            raise PlanError("LIMIT must be >= 0")
        self.limit = limit

    def derive_schema(self, input_schemas: list[Schema]) -> Schema:
        if len(input_schemas) != 1:
            raise PlanError("LIMIT takes exactly one input")
        return input_schemas[0]

    def preferred_reducers(self) -> int | None:
        return 1

    def reduce_key(self, record: Record, input_index: int, input_schemas: list[Schema]) -> Any:
        return OrderOp.GLOBAL_KEY

    def reduce(self, key: Any, tagged: list[tuple[int, Record]], input_schemas: list[Schema]) -> list[Record]:
        # Standalone LIMIT picks a *deterministic* arbitrary subset:
        # canonical order, then slice.  When LIMIT directly follows ORDER
        # the compiler instead fuses it into the ORDER job (slicing the
        # sorted reduce output), preserving the sort.
        records = canonical_sort([record for _, record in tagged])
        return records[: self.limit]
