"""Local reference interpreter for logical plans.

Evaluates a plan directly — no MapReduce, no simulation — and is used as
the semantic oracle in tests: the distributed execution must produce
exactly the records (and therefore digests) this interpreter produces.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.common.errors import PlanError
from repro.common.records import Record
from repro.dataflow.operators import (
    BlockingOperator,
    LimitOp,
    LoadOp,
    OrderOp,
    StoreOp,
    StreamingOperator,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.storage.dfs import TrustedDFS


def interpret(
    plan: LogicalPlan,
    dfs: TrustedDFS | None = None,
    inputs: Mapping[str, list[Record]] | None = None,
    precheck: bool = False,
) -> dict[str, list[Record]]:
    """Evaluate ``plan``; return ``{store_path: records}``.

    Input files resolve from ``inputs`` first, then from ``dfs``.
    When ``dfs`` is given, outputs are also written back to it.

    With ``precheck=True`` the static plan checker runs first and a
    defective plan raises :class:`repro.lint.plan_rules.PlanCheckError`
    listing *every* defect with operator locations, instead of whichever
    single validation error :meth:`~LogicalPlan.validate` hits first.
    """
    if precheck:
        # Imported lazily: the interpreter must not depend on the lint
        # subsystem unless the caller opts into prechecking.
        from repro.lint.plan_rules import precheck_plan

        precheck_plan(plan)
    plan.validate()
    inputs = inputs or {}
    results: dict[VertexId, list[Record]] = {}
    outputs: dict[str, list[Record]] = {}

    for vid in plan.topological_order():
        op = plan.op(vid)
        parent_ids = plan.inputs(vid)
        parent_records = [results[p] for p in parent_ids]

        if isinstance(op, LoadOp):
            results[vid] = _load_records(op.path, dfs, inputs)
        elif isinstance(op, StoreOp):
            records = parent_records[0]
            outputs[op.path] = records
            if dfs is not None:
                if dfs.exists(op.path):
                    dfs.delete(op.path)
                dfs.write_file(op.path, records, scope="interpreter")
            results[vid] = records
        elif isinstance(op, UnionOp):
            merged: list[Record] = []
            for records in parent_records:
                merged.extend(records)
            results[vid] = merged
        elif isinstance(op, StreamingOperator):
            input_schema = plan.schema_of(parent_ids[0])
            out: list[Record] = []
            for record in parent_records[0]:
                out.extend(op.process(record, input_schema))
            results[vid] = out
        elif isinstance(op, LimitOp) and _limit_preserves_order(plan, vid):
            # Mirror the MR compiler: LIMIT in the same job as an
            # upstream ORDER slices the *sorted* stream.
            results[vid] = parent_records[0][: op.limit]
        elif isinstance(op, BlockingOperator):
            results[vid] = _run_blocking(plan, vid, op, parent_records)
        else:
            raise PlanError(f"interpreter cannot evaluate {op!r}")

    return outputs


def _load_records(
    path: str,
    dfs: TrustedDFS | None,
    inputs: Mapping[str, list[Record]],
) -> list[Record]:
    if path in inputs:
        return list(inputs[path])
    if dfs is not None and dfs.exists(path):
        return dfs.read(path, scope="interpreter")
    raise PlanError(f"no input available for {path!r}")


def _limit_preserves_order(plan: LogicalPlan, vid: VertexId) -> bool:
    """True when the MR compiler would fuse this LIMIT into an upstream
    single-reducer job (ORDER), preserving sort order.  Must track the
    compiler's fusion rule exactly so both executions agree."""
    crossed_streaming = False
    current = plan.inputs(vid)[0]
    while True:
        op = plan.op(current)
        if len(plan.outputs(current)) > 1:
            return False  # materialized: LIMIT becomes its own job
        if isinstance(op, OrderOp):
            return True
        if isinstance(op, LimitOp):
            # A fused second LIMIT only merges when nothing sits between.
            return not crossed_streaming
        if isinstance(op, UnionOp) or not isinstance(op, StreamingOperator):
            return False
        crossed_streaming = True
        current = plan.inputs(current)[0]


def _run_blocking(
    plan: LogicalPlan,
    vid: VertexId,
    op: BlockingOperator,
    parent_records: list[list[Record]],
) -> list[Record]:
    input_schemas = plan.input_schemas_of(vid)
    groups: dict = defaultdict(list)
    for input_index, records in enumerate(parent_records):
        for record in records:
            key = op.reduce_key(record, input_index, input_schemas)
            groups[key].append((input_index, record))
    out: list[Record] = []
    # Deterministic key order: sort by repr of key (stable across runs).
    for key in sorted(groups, key=lambda k: (str(type(k)), str(k))):
        out.extend(op.reduce(key, groups[key], input_schemas))
    return out
