"""Expression AST for FILTER predicates and FOREACH projections.

Expressions evaluate against one :class:`~repro.common.records.Record`
under a :class:`~repro.dataflow.schema.Schema`.  Aggregate functions
(COUNT, SUM, AVG, MIN, MAX) consume *bags* — the canonically-sorted
tuples of records produced by GROUP — so a FOREACH over grouped data is
just ordinary expression evaluation.

AVG is implemented as sum-then-divide, not a moving average: the paper
(§5.4) notes that moving averages break replica determinism in the last
bits of floating-point precision.  ``TRUNC(x, k)`` is provided for the
paper's other workaround (truncating decimals before arithmetic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import SchemaError
from repro.common.records import Record
from repro.dataflow import schema as sc
from repro.dataflow.schema import Schema


class Expr:
    """Base class for expression nodes."""

    def evaluate(self, record: Record, schema: Schema) -> Any:
        raise NotImplementedError

    def output_type(self, schema: Schema) -> str:
        """Static result type under ``schema`` (loose; ANY when unknown)."""
        return sc.ANY

    def output_name(self) -> str:
        """Suggested field name when this expression is projected."""
        return "expr"

    def references(self) -> set[str]:
        """Field names this expression reads (for validation)."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def evaluate(self, record: Record, schema: Schema) -> Any:
        return self.value

    def output_type(self, schema: Schema) -> str:
        if isinstance(self.value, bool):
            return sc.BOOLEAN
        if isinstance(self.value, int):
            return sc.LONG
        if isinstance(self.value, float):
            return sc.DOUBLE
        if isinstance(self.value, str):
            return sc.CHARARRAY
        return sc.ANY

    def output_name(self) -> str:
        return "literal"

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


@dataclass(frozen=True)
class FieldRef(Expr):
    """Reference to a field by name or ``$k`` position."""

    name: str

    def evaluate(self, record: Record, schema: Schema) -> Any:
        return record[schema.index_of(self.name)]

    def output_type(self, schema: Schema) -> str:
        return schema.type_of(self.name)

    def output_name(self) -> str:
        return self.name.split("::")[-1].lstrip("$")

    def references(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"FieldRef({self.name})"


@dataclass(frozen=True)
class BagProject(Expr):
    """Project one field out of every record in a bag: ``B.temp``.

    Evaluates to a tuple of values, preserving the bag's canonical order.
    """

    bag: Expr
    field: str

    def evaluate(self, record: Record, schema: Schema) -> Any:
        bag_value = self.bag.evaluate(record, schema)
        if bag_value is None:
            return ()
        inner_schema = _bag_schema(self.bag, schema)
        index = inner_schema.index_of(self.field) if inner_schema else None
        out = []
        for item in bag_value:
            if index is not None:
                out.append(item[index])
            elif isinstance(item, Record) and len(item) == 1:
                out.append(item[0])
            else:
                raise SchemaError(
                    f"cannot resolve field {self.field!r} inside bag"
                )
        return tuple(out)

    def output_type(self, schema: Schema) -> str:
        return sc.BAG

    def output_name(self) -> str:
        return self.field

    def references(self) -> set[str]:
        return self.bag.references()


def _bag_schema(bag_expr: Expr, schema: Schema) -> Schema | None:
    """Inner schema of a bag-typed field (attached by GROUP)."""
    if isinstance(bag_expr, FieldRef):
        index = schema.index_of(bag_expr.name)
        return schema.field(index).inner
    return None


_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def evaluate(self, record: Record, schema: Schema) -> Any:
        if self.op == "and":
            return bool(self.left.evaluate(record, schema)) and bool(
                self.right.evaluate(record, schema)
            )
        if self.op == "or":
            return bool(self.left.evaluate(record, schema)) or bool(
                self.right.evaluate(record, schema)
            )
        left = self.left.evaluate(record, schema)
        right = self.right.evaluate(record, schema)
        if self.op in _COMPARISONS:
            if left is None or right is None:
                return False
            return _COMPARISONS[self.op](left, right)
        if self.op in _ARITHMETIC:
            if left is None or right is None:
                return None
            return _ARITHMETIC[self.op](left, right)
        raise SchemaError(f"unknown operator: {self.op!r}")

    def output_type(self, schema: Schema) -> str:
        if self.op in _COMPARISONS or self.op in ("and", "or"):
            return sc.BOOLEAN
        left = self.left.output_type(schema)
        right = self.right.output_type(schema)
        if sc.DOUBLE in (left, right) or sc.FLOAT in (left, right) or self.op == "/":
            return sc.DOUBLE
        if sc.is_numeric(left) and sc.is_numeric(right):
            return sc.LONG
        return sc.ANY

    def output_name(self) -> str:
        return "expr"

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "not" | "neg"
    operand: Expr

    def evaluate(self, record: Record, schema: Schema) -> Any:
        value = self.operand.evaluate(record, schema)
        if self.op == "not":
            return not bool(value)
        if self.op == "neg":
            return None if value is None else -value
        raise SchemaError(f"unknown unary operator: {self.op!r}")

    def output_type(self, schema: Schema) -> str:
        if self.op == "not":
            return sc.BOOLEAN
        return self.operand.output_type(schema)

    def references(self) -> set[str]:
        return self.operand.references()


@dataclass(frozen=True)
class IsNull(Expr):
    """``x IS NULL`` / ``x IS NOT NULL`` (negate=True)."""

    operand: Expr
    negate: bool = False

    def evaluate(self, record: Record, schema: Schema) -> Any:
        is_null = self.operand.evaluate(record, schema) is None
        return not is_null if self.negate else is_null

    def output_type(self, schema: Schema) -> str:
        return sc.BOOLEAN

    def references(self) -> set[str]:
        return self.operand.references()


def _as_bag(value: Any) -> tuple:
    if value is None:
        return ()
    if isinstance(value, tuple):
        return value
    if isinstance(value, (list, frozenset)):
        return tuple(value)
    raise SchemaError(f"aggregate applied to non-bag value: {type(value).__name__}")


def _scalars(bag: tuple) -> list:
    """Unwrap 1-field records inside a bag to scalars; pass scalars through."""
    out = []
    for item in bag:
        if isinstance(item, Record):
            if len(item) != 1:
                raise SchemaError(
                    "aggregate over multi-field records; project a field first"
                )
            out.append(item[0])
        else:
            out.append(item)
    return out


def _agg_count(args: list[Any]) -> int:
    return len(_as_bag(args[0]))


def _agg_sum(args: list[Any]) -> Any:
    values = [v for v in _scalars(_as_bag(args[0])) if v is not None]
    return sum(values) if values else None


def _agg_avg(args: list[Any]) -> Any:
    values = [v for v in _scalars(_as_bag(args[0])) if v is not None]
    if not values:
        return None
    # Sum-then-divide: deterministic across replicas (paper §5.4).
    return sum(values) / len(values)


def _agg_min(args: list[Any]) -> Any:
    values = [v for v in _scalars(_as_bag(args[0])) if v is not None]
    return min(values) if values else None


def _agg_max(args: list[Any]) -> Any:
    values = [v for v in _scalars(_as_bag(args[0])) if v is not None]
    return max(values) if values else None


def _fn_trunc(args: list[Any]) -> Any:
    """TRUNC(x, k): truncate x to k decimal digits (paper §5.4 workaround)."""
    value = args[0]
    digits = args[1] if len(args) > 1 else 0
    if value is None:
        return None
    scale = 10 ** int(digits)
    return int(value * scale) / scale if digits else float(int(value))


def _fn_round(args: list[Any]) -> Any:
    value = args[0]
    return None if value is None else round(value)


def _fn_floor(args: list[Any]) -> Any:
    value = args[0]
    return None if value is None else float(int(value // 1))


def _fn_abs(args: list[Any]) -> Any:
    value = args[0]
    return None if value is None else abs(value)


def _fn_concat(args: list[Any]) -> Any:
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


def _fn_size(args: list[Any]) -> Any:
    value = args[0]
    if value is None:
        return 0
    if isinstance(value, (tuple, list, frozenset, str)):
        return len(value)
    return 1


FUNCTIONS = {
    "COUNT": (_agg_count, sc.LONG, True),
    "SUM": (_agg_sum, sc.DOUBLE, True),
    "AVG": (_agg_avg, sc.DOUBLE, True),
    "MIN": (_agg_min, sc.ANY, True),
    "MAX": (_agg_max, sc.ANY, True),
    "TRUNC": (_fn_trunc, sc.DOUBLE, False),
    "ROUND": (_fn_round, sc.LONG, False),
    "FLOOR": (_fn_floor, sc.DOUBLE, False),
    "ABS": (_fn_abs, sc.ANY, False),
    "CONCAT": (_fn_concat, sc.CHARARRAY, False),
    "SIZE": (_fn_size, sc.LONG, False),
}


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name.upper() not in FUNCTIONS:
            raise SchemaError(f"unknown function: {self.name!r}")

    def evaluate(self, record: Record, schema: Schema) -> Any:
        fn, _, _ = FUNCTIONS[self.name.upper()]
        values = [arg.evaluate(record, schema) for arg in self.args]
        return fn(values)

    def output_type(self, schema: Schema) -> str:
        _, type_tag, _ = FUNCTIONS[self.name.upper()]
        return type_tag

    def output_name(self) -> str:
        if self.args:
            return f"{self.name.lower()}_{self.args[0].output_name()}"
        return self.name.lower()

    def references(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.references()
        return refs

    @property
    def is_aggregate(self) -> bool:
        return FUNCTIONS[self.name.upper()][2]


# ----------------------------------------------------------------------
# Convenience constructors (used by the builder API and tests)
# ----------------------------------------------------------------------

def field(name: str) -> FieldRef:
    return FieldRef(name)


def lit(value: Any) -> Literal:
    return Literal(value)


def eq(left: Expr, right: Expr) -> BinOp:
    return BinOp("==", left, right)


def neq(left: Expr, right: Expr) -> BinOp:
    return BinOp("!=", left, right)


def gt(left: Expr, right: Expr) -> BinOp:
    return BinOp(">", left, right)


def lt(left: Expr, right: Expr) -> BinOp:
    return BinOp("<", left, right)


def and_(left: Expr, right: Expr) -> BinOp:
    return BinOp("and", left, right)


def or_(left: Expr, right: Expr) -> BinOp:
    return BinOp("or", left, right)


def not_null(expr: Expr) -> IsNull:
    return IsNull(expr, negate=True)


def count(bag: Expr) -> FuncCall:
    return FuncCall("COUNT", (bag,))


def avg(bag: Expr) -> FuncCall:
    return FuncCall("AVG", (bag,))


def call(name: str, *args: Expr) -> FuncCall:
    return FuncCall(name, tuple(args))
