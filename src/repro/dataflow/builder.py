"""Fluent plan-construction API.

Mirrors Pig Latin's alias style without requiring the parser:

>>> from repro.dataflow import builder as b, expressions as ex
>>> from repro.dataflow.schema import Schema, INT
>>> pb = b.PlanBuilder()
>>> edges = pb.load("twitter", Schema.of(("user", INT), ("follower", INT)))
>>> counts = (edges.filter(ex.not_null(ex.field("follower")))
...                .group_by("user")
...                .generate(("group", "user"), (ex.count(ex.field("edges")), "cnt")))
>>> counts.store("follower_counts")  # doctest: +ELLIPSIS
Relation(...)
>>> plan = pb.build()
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.common.errors import PlanError
from repro.dataflow import expressions as ex
from repro.dataflow.expressions import Expr
from repro.dataflow.operators import (
    DistinctOp,
    FilterOp,
    ForeachOp,
    GroupOp,
    JoinOp,
    LimitOp,
    LoadOp,
    OrderOp,
    Projection,
    SortKey,
    StoreOp,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.dataflow.schema import Schema


def _as_expr(value: Expr | str | int | float) -> Expr:
    """Coerce shorthand arguments: strings become field refs, numbers
    literals, expressions pass through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, str):
        return ex.field(value)
    return ex.lit(value)


class Relation:
    """A handle to one plan vertex; every method adds a vertex and
    returns the new handle, enabling chaining."""

    def __init__(self, builder: "PlanBuilder", vid: VertexId, alias: str) -> None:
        self.builder = builder
        self.vid = vid
        self.alias = alias

    def __repr__(self) -> str:
        return f"Relation({self.alias!r}, vid={self.vid})"

    @property
    def schema(self) -> Schema:
        return self.builder.plan.schema_of(self.vid)

    def _derive(self, op, inputs: list[VertexId], alias: str | None) -> "Relation":
        name = alias or self.builder.fresh_alias(op.kind)
        op.alias = name
        vid = self.builder.plan.add(op, inputs)
        return Relation(self.builder, vid, name)

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------

    def filter(self, predicate: Expr, alias: str | None = None) -> "Relation":
        return self._derive(FilterOp(predicate), [self.vid], alias)

    def generate(self, *projections, alias: str | None = None) -> "Relation":
        """FOREACH ... GENERATE.  Each projection is an expression, a
        field-name string, or a ``(expr_or_name, output_name)`` pair."""
        resolved = []
        for projection in projections:
            if isinstance(projection, tuple) and not isinstance(projection, Expr):
                value, name = projection
                resolved.append(Projection(_as_expr(value), name))
            else:
                resolved.append(Projection(_as_expr(projection)))
        return self._derive(ForeachOp(resolved), [self.vid], alias)

    foreach = generate

    def group_by(self, *keys, alias: str | None = None) -> "Relation":
        key_exprs = [_as_expr(k) for k in keys]
        # The grouped-bag field is named after the input relation (Pig).
        op = GroupOp(key_exprs, bag_name=self.alias)
        return self._derive(op, [self.vid], alias)

    def join(
        self,
        other: "Relation",
        on: Sequence | None = None,
        left_on: Sequence | None = None,
        right_on: Sequence | None = None,
        alias: str | None = None,
    ) -> "Relation":
        if on is not None:
            left_on = right_on = list(on) if isinstance(on, (list, tuple)) else [on]
        if not left_on or not right_on:
            raise PlanError("join needs `on=` or both `left_on=`/`right_on=`")
        left_keys = [_as_expr(k) for k in left_on]
        right_keys = [_as_expr(k) for k in right_on]
        op = JoinOp(
            left_keys,
            right_keys,
            input_aliases=(self.alias, other.alias),
        )
        return self._derive(op, [self.vid, other.vid], alias)

    def union(self, *others: "Relation", alias: str | None = None) -> "Relation":
        inputs = [self.vid] + [other.vid for other in others]
        return self._derive(UnionOp(), inputs, alias)

    def distinct(self, alias: str | None = None) -> "Relation":
        return self._derive(DistinctOp(), [self.vid], alias)

    def order_by(self, *keys, alias: str | None = None) -> "Relation":
        """Each key is a field name or ``(name, 'desc'|'asc')``."""
        sort_keys = []
        for key in keys:
            if isinstance(key, tuple):
                name, direction = key
                sort_keys.append(SortKey(name, direction.lower() != "desc"))
            else:
                sort_keys.append(SortKey(key))
        return self._derive(OrderOp(sort_keys), [self.vid], alias)

    def limit(self, n: int, alias: str | None = None) -> "Relation":
        return self._derive(LimitOp(n), [self.vid], alias)

    def store(self, path: str) -> "Relation":
        return self._derive(StoreOp(path), [self.vid], None)


class PlanBuilder:
    """Accumulates vertices into a :class:`LogicalPlan`."""

    def __init__(self) -> None:
        self.plan = LogicalPlan()
        self._alias_counter = itertools.count(1)

    def fresh_alias(self, kind: str) -> str:
        return f"{kind}_{next(self._alias_counter)}"

    def load(self, path: str, schema: Schema, alias: str | None = None) -> Relation:
        name = alias or self.fresh_alias("load")
        vid = self.plan.add(LoadOp(path, schema, alias=name))
        return Relation(self, vid, name)

    def build(self) -> LogicalPlan:
        """Validate and return the plan."""
        self.plan.validate()
        return self.plan
