"""Logical plan: the acyclic data-flow graph of operators.

This is the structure the paper's *graph analyzer* works on (Fig. 4):
vertices are operators, edges carry records downstream.  The plan owns
vertex identity, edge order (JOIN input 0 vs 1), schema inference, and
the ``level`` function from the paper's Fig. 3 notation table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import PlanError, SchemaError
from repro.dataflow.operators import JoinOp, LoadOp, Operator, StoreOp, UnionOp
from repro.dataflow.schema import Schema

VertexId = int


@dataclass(frozen=True)
class Edge:
    src: VertexId
    dst: VertexId
    input_index: int  # position among dst's inputs


@dataclass(frozen=True)
class PlanProblem:
    """One defect found by the non-raising validation pass.

    ``kind`` is one of ``cycle``, ``arity``, ``schema``, ``no-store`` or
    ``dangling``; ``error`` carries the exception :meth:`LogicalPlan.validate`
    would raise for it (so the raising and reporting paths cannot drift).
    """

    kind: str
    vid: VertexId | None
    message: str
    error: Exception


class LogicalPlan:
    """A DAG of logical operators.

    Vertices are added with explicit input lists; edges record input
    position so multi-input operators (JOIN, UNION) stay unambiguous.
    """

    def __init__(self) -> None:
        self._ops: dict[VertexId, Operator] = {}
        self._inputs: dict[VertexId, list[VertexId]] = {}
        self._outputs: dict[VertexId, list[VertexId]] = {}
        self._next_id = 0
        self._schemas: dict[VertexId, Schema] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(self, op: Operator, inputs: list[VertexId] | None = None) -> VertexId:
        inputs = list(inputs or [])
        for src in inputs:
            if src not in self._ops:
                raise PlanError(f"unknown input vertex: {src}")
        vid = self._next_id
        self._next_id += 1
        self._ops[vid] = op
        self._inputs[vid] = inputs
        self._outputs[vid] = []
        for src in inputs:
            self._outputs[src].append(vid)
        self._schemas.clear()  # invalidate inference cache
        return vid

    def insert_after(self, vid: VertexId, op: Operator) -> VertexId:
        """Splice a unary operator between ``vid`` and all its consumers.

        Used by instrumentation to place a verification point on a
        vertex's output stream.
        """
        if vid not in self._ops:
            raise PlanError(f"unknown vertex: {vid}")
        consumers = list(self._outputs[vid])
        new_vid = self._next_id
        self._next_id += 1
        self._ops[new_vid] = op
        self._inputs[new_vid] = [vid]
        self._outputs[new_vid] = consumers
        self._outputs[vid] = [new_vid]
        for consumer in consumers:
            self._inputs[consumer] = [
                new_vid if parent == vid else parent
                for parent in self._inputs[consumer]
            ]
        self._schemas.clear()
        return new_vid

    def set_inputs(self, vid: VertexId, new_inputs: list[VertexId]) -> None:
        """Rewire a vertex's inputs (optimizer primitive).

        The caller is responsible for keeping the plan acyclic and
        schema-valid — ``validate()`` re-checks both.
        """
        if vid not in self._ops:
            raise PlanError(f"unknown vertex: {vid}")
        for parent in new_inputs:
            if parent not in self._ops:
                raise PlanError(f"unknown input vertex: {parent}")
        for parent in self._inputs[vid]:
            self._outputs[parent] = [
                child for child in self._outputs[parent] if child != vid
            ]
        self._inputs[vid] = list(new_inputs)
        for parent in new_inputs:
            self._outputs[parent].append(vid)
        self._schemas.clear()

    def replace_op(self, vid: VertexId, op: Operator) -> None:
        """Substitute the operator at a vertex (same arity expected)."""
        if vid not in self._ops:
            raise PlanError(f"unknown vertex: {vid}")
        self._ops[vid] = op
        self._schemas.clear()

    def remove_vertex(self, vid: VertexId) -> None:
        """Delete a disconnected vertex (no inputs wired to it, no
        outputs from it).  The optimizer bypasses a vertex first, then
        removes it."""
        if self._outputs.get(vid):
            raise PlanError(f"vertex {vid} still has consumers")
        for parent in self._inputs.get(vid, []):
            self._outputs[parent] = [
                child for child in self._outputs[parent] if child != vid
            ]
        self._inputs.pop(vid, None)
        self._outputs.pop(vid, None)
        self._ops.pop(vid, None)
        self._schemas.clear()

    def clone(self) -> "LogicalPlan":
        """Structural copy sharing the (stateless) operator objects."""
        copy = LogicalPlan()
        copy._ops = dict(self._ops)
        copy._inputs = {vid: list(parents) for vid, parents in self._inputs.items()}
        copy._outputs = {vid: list(children) for vid, children in self._outputs.items()}
        copy._next_id = self._next_id
        return copy

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    def vertices(self) -> list[VertexId]:
        return list(self._ops)

    def op(self, vid: VertexId) -> Operator:
        try:
            return self._ops[vid]
        except KeyError:
            raise PlanError(f"unknown vertex: {vid}") from None

    def inputs(self, vid: VertexId) -> list[VertexId]:
        return list(self._inputs[vid])

    def outputs(self, vid: VertexId) -> list[VertexId]:
        return list(self._outputs[vid])

    def parents(self, vid: VertexId) -> list[VertexId]:
        """Paper terminology alias for :meth:`inputs`."""
        return self.inputs(vid)

    def sources(self) -> list[VertexId]:
        return [vid for vid, op in self._ops.items() if op.is_source]

    def sinks(self) -> list[VertexId]:
        return [vid for vid, op in self._ops.items() if op.is_sink]

    def find_by_alias(self, alias: str) -> VertexId:
        matches = [vid for vid, op in self._ops.items() if op.alias == alias]
        if not matches:
            raise PlanError(f"no vertex with alias {alias!r}")
        # Later definitions shadow earlier ones (Pig alias reassignment).
        return matches[-1]

    def topological_order(self) -> list[VertexId]:
        """Deterministic topological order (Kahn's algorithm, FIFO by id)."""
        in_degree = {vid: len(parents) for vid, parents in self._inputs.items()}
        ready = sorted(vid for vid, deg in in_degree.items() if deg == 0)
        order: list[VertexId] = []
        while ready:
            vid = ready.pop(0)
            order.append(vid)
            newly_ready = []
            for child in self._outputs[vid]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    newly_ready.append(child)
            ready = sorted(ready + newly_ready)
        if len(order) != len(self._ops):
            raise PlanError("plan contains a cycle")
        return order

    def levels(self) -> dict[VertexId, int]:
        """Paper Fig. 3: ``level(v) = 1`` for LOAD, else
        ``max over parents of (1 + level(parent))``."""
        levels: dict[VertexId, int] = {}
        for vid in self.topological_order():
            parents = self._inputs[vid]
            if not parents:
                levels[vid] = 1
            else:
                levels[vid] = max(1 + levels[p] for p in parents)
        return levels

    # ------------------------------------------------------------------
    # validation & schemas
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structure and infer every schema (raises on problems)."""
        problems = self.problems()
        if problems:
            raise problems[0].error

    def problems(self, check_schemas: bool = True) -> list[PlanProblem]:
        """Non-raising validation: every structural and schema defect.

        The static plan checker (:mod:`repro.lint.plan_rules`) consumes
        this to report *all* defects with locations instead of crashing
        on the first; :meth:`validate` raises the first one, preserving
        the original exception types.
        """
        problems: list[PlanProblem] = []
        try:
            order = self.topological_order()
        except PlanError as exc:
            return [PlanProblem("cycle", None, str(exc), exc)]

        def arity(vid: VertexId, message: str) -> None:
            problems.append(PlanProblem("arity", vid, message, PlanError(message)))

        failed: set[VertexId] = set()
        for vid in order:
            op = self._ops[vid]
            parents = self._inputs[vid]
            ok = True
            if op.is_source and parents:
                arity(vid, f"source {op!r} must have no inputs")
                ok = False
            if not op.is_source and not parents:
                arity(vid, f"{op!r} has no inputs")
                ok = False
            if isinstance(op, JoinOp) and len(parents) != 2:
                arity(vid, f"JOIN {op.alias!r} needs exactly 2 inputs")
                ok = False
            if isinstance(op, UnionOp) and len(parents) < 2:
                arity(vid, f"UNION {op.alias!r} needs >= 2 inputs")
                ok = False
            if op.is_sink and self._outputs[vid]:
                arity(vid, f"sink {op!r} must have no outputs")
                ok = False
            if not ok or any(parent in failed for parent in parents):
                # Schema inference of a structurally-broken vertex (or of
                # a descendant of one) would only duplicate the root cause.
                failed.add(vid)
                continue
            if check_schemas:
                try:
                    self.schema_of(vid)
                except (SchemaError, PlanError) as exc:
                    failed.add(vid)
                    problems.append(PlanProblem("schema", vid, str(exc), exc))

        sinks = self.sinks()
        if not sinks:
            message = "plan has no STORE"
            problems.append(PlanProblem("no-store", None, message, PlanError(message)))
        # Every non-sink vertex must reach a sink (no dangling branches).
        reaches: set[VertexId] = set(sinks)
        for vid in reversed(order):
            if any(child in reaches for child in self._outputs[vid]):
                reaches.add(vid)
        dangling = [vid for vid in order if vid not in reaches]
        if dangling:
            names = ", ".join(self._ops[vid].describe() for vid in dangling)
            shared = PlanError(f"vertices do not reach any STORE: {names}")
            for vid in dangling:
                problems.append(
                    PlanProblem(
                        "dangling",
                        vid,
                        f"{self._ops[vid].describe()} does not reach any STORE",
                        shared,
                    )
                )
        return problems

    def schema_of(self, vid: VertexId) -> Schema:
        if vid not in self._schemas:
            op = self._ops[vid]
            parent_schemas = [self.schema_of(p) for p in self._inputs[vid]]
            self._schemas[vid] = op.derive_schema(parent_schemas)
        return self._schemas[vid]

    def input_schemas_of(self, vid: VertexId) -> list[Schema]:
        return [self.schema_of(p) for p in self._inputs[vid]]

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable plan listing in topological order."""
        lines = []
        for vid in self.topological_order():
            op = self._ops[vid]
            parents = self._inputs[vid]
            src = f" <- {parents}" if parents else ""
            alias = f" ({op.alias})" if op.alias else ""
            lines.append(f"[{vid}] {op.describe()}{alias}{src}")
        return "\n".join(lines)

    def load_paths(self) -> dict[VertexId, str]:
        """Map of LOAD vertex -> input path (for the graph analyzer)."""
        return {
            vid: op.path
            for vid, op in self._ops.items()
            if isinstance(op, LoadOp)
        }

    def store_paths(self) -> dict[VertexId, str]:
        return {
            vid: op.path
            for vid, op in self._ops.items()
            if isinstance(op, StoreOp)
        }
