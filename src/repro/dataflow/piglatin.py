"""Parser for the Pig Latin subset the evaluation scripts use.

Supported statements::

    A = LOAD 'path' AS (user:int, follower:int);
    B = FILTER A BY follower IS NOT NULL AND user > 0;
    C = GROUP B BY user;                 -- also BY (k1, k2)
    D = FOREACH C GENERATE group AS user, COUNT(B) AS cnt;
    E = JOIN A BY user, B BY follower;
    F = UNION A, B;
    G = DISTINCT B;
    H = ORDER D BY cnt DESC, user;
    I = LIMIT H 20;
    STORE I INTO 'out';

Comments: ``-- line`` and ``/* block */``.  Keywords are
case-insensitive; aliases and field names are case-sensitive (as in Pig).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ParseError
from repro.dataflow import expressions as ex
from repro.dataflow.expressions import FUNCTIONS, Expr
from repro.dataflow.operators import (
    DistinctOp,
    FilterOp,
    ForeachOp,
    GroupOp,
    JoinOp,
    LimitOp,
    LoadOp,
    OrderOp,
    Projection,
    SortKey,
    StoreOp,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.dataflow.schema import Field, Schema
from repro.dataflow.schema import ANY, BOOLEAN, CHARARRAY, DOUBLE, FLOAT, INT, LONG

# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------

KEYWORDS = {
    "LOAD", "AS", "FILTER", "BY", "GROUP", "FOREACH", "GENERATE", "JOIN",
    "UNION", "DISTINCT", "ORDER", "LIMIT", "STORE", "INTO", "AND", "OR",
    "NOT", "IS", "NULL", "DESC", "ASC",
}

TYPE_NAMES = {
    "int": INT, "long": LONG, "float": FLOAT, "double": DOUBLE,
    "chararray": CHARARRAY, "boolean": BOOLEAN,
}

SYMBOLS = [
    "::", "==", "!=", "<=", ">=", "<", ">", "=", "(", ")", ",", ";",
    ":", "$", ".", "+", "-", "*", "/", "%",
]


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | SYMBOL | EOF
    text: str
    line: int
    column: int


class Lexer:
    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif self.source.startswith("--", self.pos):
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif self.source.startswith("/*", self.pos):
                end = self.source.find("*/", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated block comment")
                self._advance(end + 2 - self.pos)
            else:
                return

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token("EOF", "", self.line, self.column))
                return out
            out.append(self._next_token())

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self.source[self.pos]
        if ch == "'":
            return self._string(line, column)
        if ch.isdigit() or (
            ch == "." and self.pos + 1 < len(self.source)
            and self.source[self.pos + 1].isdigit()
        ):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        for symbol in SYMBOLS:
            if self.source.startswith(symbol, self.pos):
                self._advance(len(symbol))
                return Token("SYMBOL", symbol, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.source) and self.source[self.pos] != "'":
            self._advance()
        if self.pos >= len(self.source):
            raise ParseError("unterminated string", line, column)
        text = self.source[start:self.pos]
        self._advance()  # closing quote
        return Token("STRING", text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot:
                # Don't consume `.` if it starts a bag projection (digit
                # never precedes those in this grammar, so safe to take).
                seen_dot = True
                self._advance()
            else:
                break
        return Token("NUMBER", self.source[start:self.pos], line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start:self.pos]
        if text.upper() in KEYWORDS:
            return Token("KEYWORD", text.upper(), line, column)
        return Token("IDENT", text, line, column)


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


class Parser:
    """Recursive-descent parser building a :class:`LogicalPlan` directly."""

    def __init__(self, source: str) -> None:
        self.tokens = Lexer(source).tokens()
        self.index = 0
        self.plan = LogicalPlan()
        self.aliases: dict[str, VertexId] = {}

    # -- token helpers --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (got {tok.kind} {tok.text!r})", tok.line, tok.column)

    def _advance(self) -> Token:
        tok = self.current
        if tok.kind != "EOF":
            self.index += 1
        return tok

    def _check(self, kind: str, text: str | None = None) -> bool:
        tok = self.current
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._accept(kind, text)
        if tok is None:
            want = text or kind
            raise self._error(f"expected {want}")
        return tok

    def _alias_vid(self, alias: str) -> VertexId:
        if alias not in self.aliases:
            raise self._error(f"undefined alias {alias!r}")
        return self.aliases[alias]

    # -- entry point ----------------------------------------------------

    def parse(self, validate: bool = True) -> LogicalPlan:
        """Parse all statements.  ``validate=False`` skips the final
        structure/schema validation so the static plan checker can
        report every defect instead of crashing on the first."""
        while not self._check("EOF"):
            self._statement()
        if validate:
            self.plan.validate()
        return self.plan

    def _statement(self) -> None:
        line = self.current.line
        if self._accept("KEYWORD", "STORE"):
            alias = self._expect("IDENT").text
            self._expect("KEYWORD", "INTO")
            path = self._expect("STRING").text
            self._expect("SYMBOL", ";")
            # STORE introduces no alias; naming it after the stored
            # relation would shadow that relation in alias lookups.
            vid = self.plan.add(StoreOp(path), [self._alias_vid(alias)])
            self.plan.op(vid).source_line = line
            return
        target = self._expect("IDENT").text
        self._expect("SYMBOL", "=")
        vid = self._relation_statement(target)
        self.plan.op(vid).source_line = line
        self.aliases[target] = vid
        self._expect("SYMBOL", ";")

    def _relation_statement(self, target: str) -> VertexId:
        if self._accept("KEYWORD", "LOAD"):
            return self._load(target)
        if self._accept("KEYWORD", "FILTER"):
            return self._filter(target)
        if self._accept("KEYWORD", "GROUP"):
            return self._group(target)
        if self._accept("KEYWORD", "FOREACH"):
            return self._foreach(target)
        if self._accept("KEYWORD", "JOIN"):
            return self._join(target)
        if self._accept("KEYWORD", "UNION"):
            return self._union(target)
        if self._accept("KEYWORD", "DISTINCT"):
            alias = self._expect("IDENT").text
            return self.plan.add(DistinctOp(alias=target), [self._alias_vid(alias)])
        if self._accept("KEYWORD", "ORDER"):
            return self._order(target)
        if self._accept("KEYWORD", "LIMIT"):
            alias = self._expect("IDENT").text
            count = int(self._expect("NUMBER").text)
            return self.plan.add(LimitOp(count, alias=target), [self._alias_vid(alias)])
        raise self._error("expected a relational operator")

    # -- statements -----------------------------------------------------

    def _load(self, target: str) -> VertexId:
        path = self._expect("STRING").text
        self._expect("KEYWORD", "AS")
        self._expect("SYMBOL", "(")
        fields = [self._schema_field()]
        while self._accept("SYMBOL", ","):
            fields.append(self._schema_field())
        self._expect("SYMBOL", ")")
        return self.plan.add(LoadOp(path, Schema(fields), alias=target))

    def _schema_field(self) -> Field:
        name = self._expect("IDENT").text
        type_tag = ANY
        if self._accept("SYMBOL", ":"):
            type_name = self._expect("IDENT").text.lower()
            if type_name not in TYPE_NAMES:
                raise self._error(f"unknown type {type_name!r}")
            type_tag = TYPE_NAMES[type_name]
        return Field(name, type_tag)

    def _filter(self, target: str) -> VertexId:
        alias = self._expect("IDENT").text
        self._expect("KEYWORD", "BY")
        predicate = self._expression()
        return self.plan.add(FilterOp(predicate, alias=target), [self._alias_vid(alias)])

    def _group(self, target: str) -> VertexId:
        alias = self._expect("IDENT").text
        self._expect("KEYWORD", "BY")
        keys = self._key_list()
        op = GroupOp(keys, alias=target, bag_name=alias)
        return self.plan.add(op, [self._alias_vid(alias)])

    def _key_list(self) -> list[Expr]:
        if self._accept("SYMBOL", "("):
            keys = [self._expression()]
            while self._accept("SYMBOL", ","):
                keys.append(self._expression())
            self._expect("SYMBOL", ")")
            return keys
        return [self._expression()]

    def _foreach(self, target: str) -> VertexId:
        alias = self._expect("IDENT").text
        self._expect("KEYWORD", "GENERATE")
        projections = [self._projection()]
        while self._accept("SYMBOL", ","):
            projections.append(self._projection())
        return self.plan.add(
            ForeachOp(projections, alias=target), [self._alias_vid(alias)]
        )

    def _projection(self) -> Projection:
        expr = self._expression()
        name = ""
        if self._accept("KEYWORD", "AS"):
            name = self._expect("IDENT").text
        return Projection(expr, name)

    def _join(self, target: str) -> VertexId:
        left_alias = self._expect("IDENT").text
        self._expect("KEYWORD", "BY")
        left_keys = self._key_list()
        self._expect("SYMBOL", ",")
        right_alias = self._expect("IDENT").text
        self._expect("KEYWORD", "BY")
        right_keys = self._key_list()
        left_vid = self._alias_vid(left_alias)
        right_vid = self._alias_vid(right_alias)
        op = JoinOp(
            left_keys,
            right_keys,
            alias=target,
            input_aliases=(left_alias, right_alias),
        )
        return self.plan.add(op, [left_vid, right_vid])

    def _union(self, target: str) -> VertexId:
        aliases = [self._expect("IDENT").text]
        while self._accept("SYMBOL", ","):
            aliases.append(self._expect("IDENT").text)
        inputs = [self._alias_vid(a) for a in aliases]
        return self.plan.add(UnionOp(alias=target), inputs)

    def _order(self, target: str) -> VertexId:
        alias = self._expect("IDENT").text
        self._expect("KEYWORD", "BY")
        keys = [self._sort_key()]
        while self._accept("SYMBOL", ","):
            keys.append(self._sort_key())
        return self.plan.add(OrderOp(keys, alias=target), [self._alias_vid(alias)])

    def _sort_key(self) -> SortKey:
        ref = self._field_ref_text()
        ascending = True
        if self._accept("KEYWORD", "DESC"):
            ascending = False
        else:
            self._accept("KEYWORD", "ASC")
        return SortKey(ref, ascending)

    def _field_ref_text(self) -> str:
        if self._accept("SYMBOL", "$"):
            return "$" + self._expect("NUMBER").text
        if self._accept("KEYWORD", "GROUP"):
            return "group"
        name = self._expect("IDENT").text
        if self._accept("SYMBOL", "::"):
            name += "::" + self._expect("IDENT").text
        return name

    # -- expressions ------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("KEYWORD", "OR"):
            left = ex.BinOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("KEYWORD", "AND"):
            left = ex.BinOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("KEYWORD", "NOT"):
            return ex.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        if self._accept("KEYWORD", "IS"):
            negate = bool(self._accept("KEYWORD", "NOT"))
            self._expect("KEYWORD", "NULL")
            return ex.IsNull(left, negate=negate)
        for symbol in ("==", "!=", "<=", ">=", "<", ">"):
            if self._accept("SYMBOL", symbol):
                return ex.BinOp(symbol, left, self._additive())
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            if self._accept("SYMBOL", "+"):
                left = ex.BinOp("+", left, self._multiplicative())
            elif self._accept("SYMBOL", "-"):
                left = ex.BinOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            matched = None
            for symbol in ("*", "/", "%"):
                if self._accept("SYMBOL", symbol):
                    matched = symbol
                    break
            if matched is None:
                return left
            left = ex.BinOp(matched, left, self._unary())

    def _unary(self) -> Expr:
        if self._accept("SYMBOL", "-"):
            return ex.UnaryOp("neg", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        if self._accept("SYMBOL", "("):
            inner = self._expression()
            self._expect("SYMBOL", ")")
            return inner
        if self._accept("SYMBOL", "$"):
            index = self._expect("NUMBER").text
            return ex.FieldRef(f"${index}")
        if self._check("NUMBER"):
            text = self._advance().text
            return ex.Literal(float(text) if "." in text else int(text))
        if self._check("STRING"):
            return ex.Literal(self._advance().text)
        if self._accept("KEYWORD", "NULL"):
            return ex.Literal(None)
        if self._accept("KEYWORD", "GROUP"):
            # `group` is context-sensitive in Pig: inside expressions it
            # names the grouping-key field produced by GROUP BY.
            base: Expr = ex.FieldRef("group")
            while self._accept("SYMBOL", "."):
                base = ex.BagProject(base, self._expect("IDENT").text)
            return base
        if self._check("IDENT"):
            return self._name_expr()
        raise self._error("expected an expression")

    def _name_expr(self) -> Expr:
        name = self._advance().text
        if name.upper() in FUNCTIONS and self._check("SYMBOL", "("):
            self._advance()  # (
            args: list[Expr] = []
            if not self._check("SYMBOL", ")"):
                args.append(self._expression())
                while self._accept("SYMBOL", ","):
                    args.append(self._expression())
            self._expect("SYMBOL", ")")
            return ex.FuncCall(name.upper(), tuple(args))
        if self._accept("SYMBOL", "::"):
            name += "::" + self._expect("IDENT").text
        base: Expr = ex.FieldRef(name)
        while self._accept("SYMBOL", "."):
            field_name = self._expect("IDENT").text
            base = ex.BagProject(base, field_name)
        return base


def parse_script(source: str, validate: bool = True) -> LogicalPlan:
    """Parse a Pig Latin subset script into a validated logical plan."""
    return Parser(source).parse(validate=validate)
