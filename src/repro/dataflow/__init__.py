"""Pig-style dataflow substrate: schemas, expressions, logical plans,
a Pig Latin subset parser, and a local reference interpreter."""

from repro.dataflow.builder import PlanBuilder, Relation
from repro.dataflow.interpreter import interpret
from repro.dataflow.optimizer import OptimizeReport, optimize
from repro.dataflow.piglatin import parse_script
from repro.dataflow.plan import LogicalPlan
from repro.dataflow.schema import Field, Schema
from repro.dataflow.unparse import unparse

__all__ = [
    "Field",
    "LogicalPlan",
    "OptimizeReport",
    "PlanBuilder",
    "Relation",
    "Schema",
    "interpret",
    "optimize",
    "parse_script",
    "unparse",
]
