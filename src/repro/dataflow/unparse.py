"""Logical plan → Pig Latin text (the parser's inverse).

Useful for debugging optimizer rewrites (print the plan a rewrite
produced as a script), persisting generated plans, and as the anchor of
the parse↔unparse round-trip property tests.

Only *user-expressible* plans can be unparsed: instrumentation
operators (``VerifyOp``) have no Pig syntax and raise.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.dataflow.expressions import (
    BagProject,
    BinOp,
    Expr,
    FieldRef,
    FuncCall,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.dataflow.operators import (
    DistinctOp,
    FilterOp,
    ForeachOp,
    GroupOp,
    JoinOp,
    LimitOp,
    LoadOp,
    OrderOp,
    StoreOp,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.dataflow.schema import ANY, Schema


def expr_to_pig(expr: Expr) -> str:
    """Serialize an expression; binary operations are parenthesized so
    precedence never depends on the reader."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            return "1 == 1" if expr.value else "1 == 0"
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return repr(expr.value)
    if isinstance(expr, FieldRef):
        return expr.name
    if isinstance(expr, BinOp):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({expr_to_pig(expr.left)} {op} {expr_to_pig(expr.right)})"
    if isinstance(expr, UnaryOp):
        if expr.op == "not":
            return f"(NOT {expr_to_pig(expr.operand)})"
        return f"(-{expr_to_pig(expr.operand)})"
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negate else "IS NULL"
        return f"{expr_to_pig(expr.operand)} {suffix}"
    if isinstance(expr, FuncCall):
        args = ", ".join(expr_to_pig(a) for a in expr.args)
        return f"{expr.name.upper()}({args})"
    if isinstance(expr, BagProject):
        return f"{expr_to_pig(expr.bag)}.{expr.field}"
    raise PlanError(f"cannot unparse expression {expr!r}")


def _schema_clause(schema: Schema) -> str:
    parts = []
    for field in schema:
        if field.type == ANY:
            parts.append(field.name)
        else:
            parts.append(f"{field.name}:{field.type}")
    return ", ".join(parts)


class _Unparser:
    def __init__(self, plan: LogicalPlan) -> None:
        self.plan = plan
        self.names: dict[VertexId, str] = {}
        self.used: set[str] = set()
        self.lines: list[str] = []

    def _name(self, vid: VertexId) -> str:
        if vid in self.names:
            return self.names[vid]
        op = self.plan.op(vid)
        base = op.alias or f"rel_{vid}"
        name = base
        counter = 1
        while name in self.used:
            counter += 1
            name = f"{base}_{counter}"
        self.used.add(name)
        self.names[vid] = name
        return name

    def unparse(self) -> str:
        for vid in self.plan.topological_order():
            self._emit(vid)
        return "\n".join(self.lines) + "\n"

    def _emit(self, vid: VertexId) -> None:
        op = self.plan.op(vid)
        parents = self.plan.inputs(vid)
        if isinstance(op, LoadOp):
            self.lines.append(
                f"{self._name(vid)} = LOAD '{op.path}' "
                f"AS ({_schema_clause(op.load_schema)});"
            )
        elif isinstance(op, StoreOp):
            self.lines.append(f"STORE {self._name(parents[0])} INTO '{op.path}';")
        elif isinstance(op, FilterOp):
            self.lines.append(
                f"{self._name(vid)} = FILTER {self._name(parents[0])} "
                f"BY {expr_to_pig(op.predicate)};"
            )
        elif isinstance(op, ForeachOp):
            clauses = []
            for projection in op.projections:
                clause = expr_to_pig(projection.expr)
                if projection.name:
                    clause += f" AS {projection.name}"
                clauses.append(clause)
            self.lines.append(
                f"{self._name(vid)} = FOREACH {self._name(parents[0])} "
                f"GENERATE {', '.join(clauses)};"
            )
        elif isinstance(op, GroupOp):
            keys = ", ".join(expr_to_pig(k) for k in op.key_exprs)
            if len(op.key_exprs) > 1:
                keys = f"({keys})"
            # The parser names the bag after the *referenced* relation, so
            # GROUP must reference a relation whose name matches bag_name.
            self.lines.append(
                f"{self._name(vid)} = GROUP {self._name(parents[0])} BY {keys};"
            )
        elif isinstance(op, JoinOp):
            left = ", ".join(expr_to_pig(k) for k in op.left_keys)
            right = ", ".join(expr_to_pig(k) for k in op.right_keys)
            if len(op.left_keys) > 1:
                left, right = f"({left})", f"({right})"
            self.lines.append(
                f"{self._name(vid)} = JOIN {self._name(parents[0])} BY {left}, "
                f"{self._name(parents[1])} BY {right};"
            )
        elif isinstance(op, UnionOp):
            inputs = ", ".join(self._name(p) for p in parents)
            self.lines.append(f"{self._name(vid)} = UNION {inputs};")
        elif isinstance(op, DistinctOp):
            self.lines.append(
                f"{self._name(vid)} = DISTINCT {self._name(parents[0])};"
            )
        elif isinstance(op, OrderOp):
            keys = ", ".join(
                f"{key.ref}{'' if key.ascending else ' DESC'}"
                for key in op.sort_keys
            )
            self.lines.append(
                f"{self._name(vid)} = ORDER {self._name(parents[0])} BY {keys};"
            )
        elif isinstance(op, LimitOp):
            self.lines.append(
                f"{self._name(vid)} = LIMIT {self._name(parents[0])} {op.limit};"
            )
        else:
            raise PlanError(f"operator {op!r} has no Pig Latin syntax")


def unparse(plan: LogicalPlan) -> str:
    """Serialize a (user-expressible) plan back to Pig Latin."""
    return _Unparser(plan).unparse()
