"""Logical-plan optimizer: Pig-style rewrite rules.

Semantics-preserving rewrites applied before compilation:

* **merge-filters** — ``FILTER p1`` feeding only ``FILTER p2`` becomes
  ``FILTER (p1 AND p2)``;
* **filter-before-order** — a filter after a global sort runs *before*
  it (sorting records that are about to be dropped is pure waste, and
  the filter preserves relative order);
* **filter-through-union** — a filter on a union's (sole) output runs on
  each input branch;
* **filter-into-join** — a filter whose predicate touches only one join
  input runs on that input, shrinking the shuffled side.

Each rule fires only in shapes where it cannot change results (single-
consumer edges, resolvable references); ``optimize`` loops to a fixed
point and reports which rules fired.  The optimizer mutates the plan it
is given — pass a ``clone()`` to keep the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SchemaError
from repro.dataflow import expressions as ex
from repro.dataflow.expressions import (
    BagProject,
    BinOp,
    Expr,
    FieldRef,
    FuncCall,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.dataflow.operators import (
    FilterOp,
    JoinOp,
    OrderOp,
    UnionOp,
)
from repro.dataflow.plan import LogicalPlan, VertexId


@dataclass
class OptimizeReport:
    """Which rules fired, in order."""

    applied: list[str] = field(default_factory=list)

    def count(self, rule: str) -> int:
        return self.applied.count(rule)


def rewrite_refs(expr: Expr, mapping: dict[str, str]) -> Expr:
    """Rebuild an expression with field references renamed."""
    if isinstance(expr, FieldRef):
        return FieldRef(mapping.get(expr.name, expr.name))
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            rewrite_refs(expr.left, mapping),
            rewrite_refs(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, rewrite_refs(expr.operand, mapping))
    if isinstance(expr, IsNull):
        return IsNull(rewrite_refs(expr.operand, mapping), expr.negate)
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(rewrite_refs(a, mapping) for a in expr.args)
        )
    if isinstance(expr, BagProject):
        return BagProject(rewrite_refs(expr.bag, mapping), expr.field)
    return expr


class Optimizer:
    """Applies the rewrite rules to one plan."""

    MAX_PASSES = 20

    def __init__(self, plan: LogicalPlan) -> None:
        self.plan = plan
        self.report = OptimizeReport()

    def optimize(self) -> OptimizeReport:
        self.plan.validate()
        for _ in range(self.MAX_PASSES):
            if not self._one_pass():
                break
        self.plan.validate()
        return self.report

    def _one_pass(self) -> bool:
        for vid in self.plan.topological_order():
            if vid not in self.plan.vertices():
                continue  # removed by an earlier rewrite this pass
            op = self.plan.op(vid)
            if not isinstance(op, FilterOp):
                continue
            if self._merge_filters(vid, op):
                return True
            if self._filter_before_order(vid, op):
                return True
            if self._filter_through_union(vid, op):
                return True
            if self._filter_into_join(vid, op):
                return True
        return False

    # ------------------------------------------------------------------
    # rules (each: vid is a FilterOp vertex; return True if rewritten)
    # ------------------------------------------------------------------

    def _merge_filters(self, vid: VertexId, op: FilterOp) -> bool:
        parent = self.plan.inputs(vid)[0]
        parent_op = self.plan.op(parent)
        if not isinstance(parent_op, FilterOp):
            return False
        if self.plan.outputs(parent) != [vid]:
            return False  # parent feeds someone else too
        merged = FilterOp(
            ex.and_(parent_op.predicate, op.predicate),
            alias=op.alias or parent_op.alias,
        )
        self.plan.replace_op(vid, merged)
        self.plan.set_inputs(vid, self.plan.inputs(parent))
        self.plan.remove_vertex(parent)
        self.report.applied.append("merge-filters")
        return True

    def _filter_before_order(self, vid: VertexId, op: FilterOp) -> bool:
        parent = self.plan.inputs(vid)[0]
        parent_op = self.plan.op(parent)
        if not isinstance(parent_op, OrderOp):
            return False
        if self.plan.outputs(parent) != [vid]:
            return False
        grandparents = self.plan.inputs(parent)
        consumers = self.plan.outputs(vid)
        # Rewire: gp -> filter -> order -> consumers.
        self.plan.set_inputs(vid, grandparents)
        self.plan.set_inputs(parent, [vid])
        for consumer in consumers:
            self.plan.set_inputs(
                consumer,
                [parent if p == vid else p for p in self.plan.inputs(consumer)],
            )
        self.report.applied.append("filter-before-order")
        return True

    def _filter_through_union(self, vid: VertexId, op: FilterOp) -> bool:
        parent = self.plan.inputs(vid)[0]
        parent_op = self.plan.op(parent)
        if not isinstance(parent_op, UnionOp):
            return False
        if self.plan.outputs(parent) != [vid]:
            return False
        branches = self.plan.inputs(parent)
        # The union schema is its first input's; predicates must resolve
        # against every branch (positions align, names may differ — use
        # positional references to stay branch-agnostic).
        union_schema = self.plan.schema_of(parent)
        try:
            mapping = {
                ref: f"${union_schema.index_of(ref)}"
                for ref in op.predicate.references()
            }
        except SchemaError:
            return False
        positional = rewrite_refs(op.predicate, mapping)
        new_branches = []
        for branch in branches:
            branch_filter = self.plan.add(
                FilterOp(positional, alias=op.alias), [branch]
            )
            new_branches.append(branch_filter)
        self.plan.set_inputs(parent, new_branches)
        consumers = self.plan.outputs(vid)
        for consumer in consumers:
            self.plan.set_inputs(
                consumer,
                [parent if p == vid else p for p in self.plan.inputs(consumer)],
            )
        self.plan.set_inputs(vid, [])
        self.plan.remove_vertex(vid)
        self.report.applied.append("filter-through-union")
        return True

    def _filter_into_join(self, vid: VertexId, op: FilterOp) -> bool:
        parent = self.plan.inputs(vid)[0]
        parent_op = self.plan.op(parent)
        if not isinstance(parent_op, JoinOp):
            return False
        if self.plan.outputs(parent) != [vid]:
            return False
        join_schema = self.plan.schema_of(parent)
        left_vid, right_vid = self.plan.inputs(parent)
        left_arity = len(self.plan.schema_of(left_vid))
        sides = set()
        positions: dict[str, int] = {}
        try:
            for ref in op.predicate.references():
                index = join_schema.index_of(ref)
                positions[ref] = index
                sides.add(0 if index < left_arity else 1)
        except SchemaError:
            return False
        if len(sides) != 1:
            return False  # touches both sides (or neither): leave it
        side = sides.pop()
        offset = 0 if side == 0 else left_arity
        mapping = {ref: f"${index - offset}" for ref, index in positions.items()}
        pushed = FilterOp(rewrite_refs(op.predicate, mapping), alias=op.alias)
        source = left_vid if side == 0 else right_vid
        pushed_vid = self.plan.add(pushed, [source])
        new_inputs = list(self.plan.inputs(parent))
        new_inputs[side] = pushed_vid
        self.plan.set_inputs(parent, new_inputs)
        consumers = self.plan.outputs(vid)
        for consumer in consumers:
            self.plan.set_inputs(
                consumer,
                [parent if p == vid else p for p in self.plan.inputs(consumer)],
            )
        self.plan.set_inputs(vid, [])
        self.plan.remove_vertex(vid)
        self.report.applied.append("filter-into-join")
        return True


def optimize(plan: LogicalPlan) -> OptimizeReport:
    """Optimize ``plan`` in place; returns the applied-rule report."""
    return Optimizer(plan).optimize()
