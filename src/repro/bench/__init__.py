"""Benchmark regression harness: ``repro bench``.

Runs a suite of deterministic, seeded benchmarks (trace-backed where
the paper's figure is a time-series), writes schema-versioned
``BENCH_<name>.json`` result files, and compares them against committed
baselines with per-metric tolerances — exit 1 on regression.  This is
the perf trajectory the ROADMAP's north-star tracks: every commit can
re-run the suite and diff against the last accepted numbers.
"""

from repro.bench.runner import (
    SCHEMA_VERSION,
    Regression,
    compare_payload,
    run_suite,
)
from repro.bench.suites import SUITES, BenchSpec

__all__ = [
    "SCHEMA_VERSION",
    "SUITES",
    "BenchSpec",
    "Regression",
    "compare_payload",
    "run_suite",
]
