"""``repro bench`` subcommand: run the benchmark regression suite."""

from __future__ import annotations

from repro.bench.runner import (
    DEFAULT_BASELINE_DIR,
    DEFAULT_RESULTS_DIR,
    run_suite,
)
from repro.bench.suites import SUITES


def add_bench_parser(sub) -> None:
    bench = sub.add_parser(
        "bench",
        help="run seeded benchmarks, write BENCH_<name>.json, gate on baselines",
    )
    bench.add_argument(
        "names",
        nargs="*",
        metavar="NAME",
        help="benchmarks to run (default: all); see --list",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="small-seed variant for CI (same code paths, reduced sizes)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list available benchmarks"
    )
    bench.add_argument(
        "--results-dir",
        default=DEFAULT_RESULTS_DIR,
        help=f"where BENCH_<name>.json lands (default: {DEFAULT_RESULTS_DIR})",
    )
    bench.add_argument(
        "--baseline-dir",
        default=DEFAULT_BASELINE_DIR,
        help="committed baselines to compare against "
        f"(default: {DEFAULT_BASELINE_DIR}; smoke variants in smoke/)",
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the baselines from this run instead of comparing",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="default relative tolerance for metrics without their own "
        "(default 0: exact, the right gate for a deterministic simulator)",
    )


def cmd_bench(args) -> int:
    if args.list:
        for spec in SUITES:
            print(f"{spec.name:<18} seed={spec.seed:<10} {spec.description}")
        return 0
    return run_suite(
        names=args.names or None,
        smoke=args.smoke,
        results_dir=args.results_dir,
        baseline_dir=args.baseline_dir,
        update_baselines=args.update_baselines,
        default_tolerance=args.tolerance,
    )
