"""Benchmark runner: execute suites, persist results, gate on baselines.

Result files are ``BENCH_<name>.json`` in ``benchmarks/results/`` —
schema-versioned, sorted-key JSON carrying the metrics, the seed, the
variant (full/smoke) and the git sha, so the perf trajectory accumulates
one machine-readable point per commit.  Baselines are the same payload
minus the git sha, committed under ``benchmarks/baselines/`` (smoke
variants in a ``smoke/`` subdirectory).

Comparison policy: each baseline metric may carry a relative
``tolerance`` (fraction; 0 or absent = exact, which is the right default
for a deterministic simulator).  A run regresses when any metric
deviates beyond its tolerance in *either* direction — upward drift on a
latency metric is a perf regression, downward drift on a fidelity metric
(jobs completed, suspects isolated) is a correctness smell, and silent
movement of supposedly-deterministic numbers means nondeterminism crept
in.  Missing metrics and missing result files regress too.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass

from repro.bench.suites import SUITES, BenchSpec, spec_by_name
from repro.common.atomic_io import write_json

SCHEMA_VERSION = "repro.bench/v1"

DEFAULT_RESULTS_DIR = os.path.join("benchmarks", "results")
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")


@dataclass(frozen=True)
class Regression:
    benchmark: str
    metric: str
    baseline: float | None
    current: float | None
    tolerance: float

    def render(self) -> str:
        if self.baseline is None:
            return f"{self.benchmark}.{self.metric}: missing from baseline run"
        if self.current is None:
            return f"{self.benchmark}.{self.metric}: missing from this run"
        return (
            f"{self.benchmark}.{self.metric}: {self.baseline:g} -> "
            f"{self.current:g} (tolerance {self.tolerance:g})"
        )


def git_sha() -> str:
    """Short commit sha of the working tree, or 'unknown' outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def build_payload(
    spec: BenchSpec, smoke: bool, sha: str | None = None
) -> dict:
    """Run one benchmark and wrap its metrics in the result schema."""
    return {
        "schema": SCHEMA_VERSION,
        "benchmark": spec.name,
        "variant": "smoke" if smoke else "full",
        "seed": spec.seed,
        "git_sha": sha if sha is not None else git_sha(),
        "metrics": spec.run(smoke),
    }


def write_payload(payload: dict, directory: str) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{payload['benchmark']}.json")
    # Atomic replace: a crashed or concurrent bench run never leaves a
    # torn result file for the comparison gate to choke on.
    write_json(path, payload)
    return path


def baseline_path(name: str, baseline_dir: str, smoke: bool) -> str:
    directory = os.path.join(baseline_dir, "smoke") if smoke else baseline_dir
    return os.path.join(directory, f"BENCH_{name}.json")


def _as_baseline(payload: dict) -> dict:
    """A result payload minus the commit-specific field."""
    baseline = dict(payload)
    baseline.pop("git_sha", None)
    return baseline


def compare_payload(
    payload: dict, baseline: dict, default_tolerance: float = 0.0
) -> list[Regression]:
    """Per-metric comparison; any deviation beyond tolerance regresses."""
    current = {m["name"]: m for m in payload.get("metrics", [])}
    regressions: list[Regression] = []
    for row in baseline.get("metrics", []):
        name = row["name"]
        tolerance = float(row.get("tolerance", default_tolerance))
        if name not in current:
            regressions.append(
                Regression(payload["benchmark"], name, row["value"], None, tolerance)
            )
            continue
        base_value = float(row["value"])
        cur_value = float(current[name]["value"])
        limit = tolerance * max(abs(base_value), 1e-12)
        if abs(cur_value - base_value) > limit:
            regressions.append(
                Regression(
                    payload["benchmark"], name, base_value, cur_value, tolerance
                )
            )
    for name in current:
        if not any(row["name"] == name for row in baseline.get("metrics", [])):
            regressions.append(
                Regression(
                    payload["benchmark"],
                    name,
                    None,
                    float(current[name]["value"]),
                    0.0,
                )
            )
    return regressions


def run_suite(
    names: list[str] | None = None,
    smoke: bool = False,
    results_dir: str = DEFAULT_RESULTS_DIR,
    baseline_dir: str = DEFAULT_BASELINE_DIR,
    update_baselines: bool = False,
    default_tolerance: float = 0.0,
    log=print,
    _suites: tuple[BenchSpec, ...] | None = None,
) -> int:
    """Run benchmarks, write results, compare; returns the exit code.

    ``_suites`` overrides the registered suite — test seam only.
    """
    available = SUITES if _suites is None else _suites
    specs = (
        [spec_by_name(name) for name in names] if names else list(available)
    )
    sha = git_sha()
    all_regressions: list[Regression] = []
    missing_baselines: list[str] = []
    for spec in specs:
        payload = build_payload(spec, smoke, sha=sha)
        result_path = write_payload(payload, results_dir)
        log(
            f"bench {spec.name} [{payload['variant']}]: "
            f"{len(payload['metrics'])} metrics -> {result_path}"
        )
        base_path = baseline_path(spec.name, baseline_dir, smoke)
        if update_baselines:
            os.makedirs(os.path.dirname(base_path), exist_ok=True)
            write_json(base_path, _as_baseline(payload))
            log(f"  baseline updated: {base_path}")
            continue
        if not os.path.exists(base_path):
            missing_baselines.append(base_path)
            log(f"  no baseline at {base_path} (run --update-baselines)")
            continue
        with open(base_path) as handle:
            baseline = json.load(handle)
        regressions = compare_payload(
            payload, baseline, default_tolerance=default_tolerance
        )
        if regressions:
            for regression in regressions:
                log(f"  REGRESSION {regression.render()}")
            all_regressions.extend(regressions)
        else:
            log(f"  ok vs {base_path}")
    if all_regressions:
        log(
            f"{len(all_regressions)} metric regression(s) across "
            f"{len({r.benchmark for r in all_regressions})} benchmark(s)"
        )
        return 1
    return 0
