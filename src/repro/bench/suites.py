"""Benchmark suite definitions.

Each spec is a named, seeded, deterministic measurement.  The figure
benchmarks are **trace-backed**: they run the workload under telemetry
and derive their metrics from the recorded gauge series/events via
:mod:`repro.telemetry.analysis` — the same numbers ``repro report``
shows — rather than keeping bespoke in-benchmark bookkeeping.  The
``smoke`` variant shrinks sizes for CI while keeping the same code
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.telemetry import Telemetry
from repro.telemetry.analysis import (
    first_event,
    gauge_series,
    last_gauge_value,
    summarize,
)

Metric = dict


def metric(name: str, value, units: str, tolerance: float = 0.0) -> Metric:
    """One benchmark metric row (tolerance is relative, 0 = exact)."""
    row = {"name": name, "value": value, "units": units}
    if tolerance:
        row["tolerance"] = tolerance
    return row


@dataclass(frozen=True)
class BenchSpec:
    name: str
    description: str
    seed: int
    run: Callable[[bool], list[Metric]]  # run(smoke) -> metrics


# ---------------------------------------------------------------------------
# fig12 — suspicion saturation (isolation simulator, trace-backed)
# ---------------------------------------------------------------------------


def _fig12(smoke: bool) -> list[Metric]:
    from repro.isolation.simulator import IsolationSimulator

    telemetry = Telemetry.recording()
    simulator = IsolationSimulator(
        f=1, commission_probability=0.8, seed=12, telemetry=telemetry
    )
    simulator.run(max_time=30 if smoke else 150)
    records = telemetry.export_records()
    saturation = first_event(records, "saturation")
    return [
        metric(
            "saturation_time",
            saturation["ts"] if saturation else -1,
            "simulated_seconds",
        ),
        metric(
            "jobs_at_saturation",
            (saturation.get("attrs") or {}).get("jobs_completed", -1)
            if saturation
            else -1,
            "jobs",
        ),
        metric(
            "jobs_completed",
            last_gauge_value(records, "sim_jobs_completed", 0),
            "jobs",
        ),
        metric(
            "final_suspects",
            last_gauge_value(records, "suspicion_suspects", 0),
            "nodes",
        ),
        metric(
            "final_high_band",
            last_gauge_value(records, "suspicion_band_nodes", 0, band="high"),
            "nodes",
        ),
    ]


# ---------------------------------------------------------------------------
# fig13 — suspicion spikes (multi-seed peak, trace-backed)
# ---------------------------------------------------------------------------

_FIG13_SEEDS_FULL = (3, 5, 11, 17, 23)
_FIG13_SEEDS_SMOKE = (3, 5)


def _fig13(smoke: bool) -> list[Metric]:
    from repro.isolation.simulator import IsolationSimulator

    seeds = _FIG13_SEEDS_SMOKE if smoke else _FIG13_SEEDS_FULL
    max_time = 60 if smoke else 150
    peaks = []
    for seed in seeds:
        telemetry = Telemetry.recording()
        simulator = IsolationSimulator(
            f=2,
            ratio=(10, 1, 1),
            commission_probability=0.25,
            seed=seed,
            telemetry=telemetry,
        )
        simulator.run(max_time=max_time)
        series = gauge_series(
            telemetry.export_records(), "suspicion_suspects"
        )
        peaks.append(max((value for _, value in series), default=0.0))
    return [
        metric("peak_suspects_max", max(peaks), "nodes"),
        metric("peak_suspects_mean", sum(peaks) / len(peaks), "nodes"),
        metric("runs", len(peaks), "runs"),
    ]


# ---------------------------------------------------------------------------
# exec — assured group-count execution (controller, trace-backed)
# ---------------------------------------------------------------------------

_EXEC_SCRIPT = """
A = LOAD 'in' AS (k:int, v:int);
B = FILTER A BY v IS NOT NULL;
G = GROUP B BY k;
C = FOREACH G GENERATE group AS k, COUNT(B) AS n;
STORE C INTO 'out';
"""


def _exec(smoke: bool) -> list[Metric]:
    import os
    import tempfile

    from repro.chaos.runner import workload
    from repro.common.config import (
        ClusterBFTConfig,
        ClusterConfig,
        SystemConfig,
    )
    from repro.core import journal as wal
    from repro.core.controller import ClusterBFTController

    telemetry = Telemetry.recording()
    config = SystemConfig(
        cluster=ClusterConfig(
            num_nodes=16 if smoke else 32,
            slots_per_node=3,
            heartbeat_period=0.2,
        ),
        bft=ClusterBFTConfig(f=1, replication=4, verification_points=1),
        seed=20131209,
    )
    inputs = {"in": workload(7)[: 120 if smoke else 320]}
    # Journal into a throwaway file: the WAL is pure host-side I/O, so
    # every simulated-time metric must stay byte-identical to the
    # baselines committed before journaling existed — the regression
    # gate doubles as the zero-overhead proof for the durable tier.
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        journal = wal.Journal.create(
            os.path.join(tmp, "exec.wal"),
            config,
            _EXEC_SCRIPT,
            inputs,
            block_bytes=2048,
        )
        controller = ClusterBFTController(
            config, block_bytes=2048, telemetry=telemetry, journal=journal
        )
        for path, records in inputs.items():
            controller.load_input(path, records)
        result = controller.run_assured(_EXEC_SCRIPT)
    summary = summarize(telemetry.export_records())
    return [
        metric("latency", round(result.latency, 6), "simulated_seconds"),
        metric("assured", int(result.assured), "bool"),
        metric("attempts", result.attempts, "attempts"),
        metric("tasks", summary.task_count, "tasks"),
        metric(
            "task_seconds", round(summary.task_seconds, 6), "simulated_seconds"
        ),
        metric(
            "verify_seconds",
            round(summary.verify_seconds, 6),
            "simulated_seconds",
        ),
        metric(
            "verify_tail_seconds",
            round(summary.verify_tail_seconds, 6),
            "simulated_seconds",
        ),
    ]


# ---------------------------------------------------------------------------
# geo_placement — assured latency vs. region placement (Fig.-style sweep)
# ---------------------------------------------------------------------------

#: (layout name, region triples) — same node count per row so the only
#: variable is placement; WAN latency applies to cross-region digests.
_GEO_LAYOUTS = (
    ("flat", ()),
    ("two_regions", (("east", 8, 1.0), ("west", 8, 1.0))),
    ("three_regions", (("east", 6, 1.0), ("west", 5, 1.0), ("south", 5, 1.0))),
    ("slow_region", (("east", 6, 1.0), ("west", 5, 1.0), ("south", 5, 0.5))),
)


def _geo(smoke: bool) -> list[Metric]:
    from repro.chaos.runner import workload
    from repro.common.config import (
        ClusterBFTConfig,
        ClusterConfig,
        SystemConfig,
    )
    from repro.core.controller import ClusterBFTController

    rows = 120 if smoke else 320
    metrics: list[Metric] = []
    latencies: dict[str, float] = {}
    for layout, regions in _GEO_LAYOUTS:
        config = SystemConfig(
            cluster=ClusterConfig(
                num_nodes=16,
                slots_per_node=3,
                heartbeat_period=0.2,
                regions=regions,
                wan_latency_seconds=0.25,
            ),
            bft=ClusterBFTConfig(f=1, replication=4, verification_points=1),
            seed=20131209,
        )
        controller = ClusterBFTController(config, block_bytes=2048)
        controller.load_input("in", workload(7)[:rows])
        result = controller.run_assured(_EXEC_SCRIPT)
        latencies[layout] = result.latency
        metrics.append(
            metric(
                f"latency_{layout}",
                round(result.latency, 6),
                "simulated_seconds",
            )
        )
        metrics.append(metric(f"assured_{layout}", int(result.assured), "bool"))
    metrics.append(
        metric(
            "wan_overhead_two_regions",
            round(latencies["two_regions"] - latencies["flat"], 6),
            "simulated_seconds",
        )
    )
    metrics.append(
        metric(
            "slow_region_overhead",
            round(latencies["slow_region"] - latencies["three_regions"], 6),
            "simulated_seconds",
        )
    )
    return metrics


# ---------------------------------------------------------------------------
# trace_overhead — causal tracing must not perturb simulated time
# ---------------------------------------------------------------------------


def _trace_overhead(smoke: bool) -> list[Metric]:
    """Same-seed run untraced, traced, and causal-traced.

    Telemetry (including the causal layer) observes the simulation; it
    never schedules events or draws randomness.  The proof is in the
    payload: identical output digests and identical simulated latency
    across all three modes.  Host-time overhead is deliberately *not* a
    metric here — the CI bench-smoke job byte-compares double runs, and
    wall-clock numbers would break that; a loose bound lives in the unit
    tests instead.
    """
    import hashlib

    from repro.chaos.runner import workload
    from repro.common.config import (
        ClusterBFTConfig,
        ClusterConfig,
        SystemConfig,
    )
    from repro.common.records import encode_record
    from repro.core.controller import ClusterBFTController
    from repro.telemetry.causal import build_causal

    rows = 120 if smoke else 320

    def one_run(telemetry):
        config = SystemConfig(
            cluster=ClusterConfig(
                num_nodes=16, slots_per_node=3, heartbeat_period=0.2
            ),
            bft=ClusterBFTConfig(f=1, replication=4, verification_points=1),
            seed=20131209,
        )
        controller = ClusterBFTController(
            config, block_bytes=2048, telemetry=telemetry
        )
        controller.load_input("in", workload(7)[:rows])
        result = controller.run_assured(_EXEC_SCRIPT)
        hasher = hashlib.sha256()
        for path in sorted(result.outputs):
            hasher.update(path.encode())
            for record in result.outputs[path]:
                hasher.update(encode_record(record))
        return result, hasher.hexdigest()

    untraced, digest_untraced = one_run(None)
    traced_telemetry = Telemetry.recording()
    traced, digest_traced = one_run(traced_telemetry)
    causal_telemetry = Telemetry.recording(causal=True)
    causal, digest_causal = one_run(causal_telemetry)

    traced_records = traced_telemetry.export_records()
    causal_records = causal_telemetry.export_records()
    graph = build_causal(causal_records)
    return [
        metric(
            "output_digest_match_traced",
            int(digest_traced == digest_untraced),
            "bool",
        ),
        metric(
            "output_digest_match_causal",
            int(digest_causal == digest_untraced),
            "bool",
        ),
        metric(
            "latency_untraced",
            round(untraced.latency, 6),
            "simulated_seconds",
        ),
        metric(
            "latency_delta_traced",
            round(traced.latency - untraced.latency, 6),
            "simulated_seconds",
        ),
        metric(
            "latency_delta_causal",
            round(causal.latency - untraced.latency, 6),
            "simulated_seconds",
        ),
        metric("trace_records", len(traced_records), "records"),
        metric(
            "causal_extra_records",
            len(causal_records) - len(traced_records),
            "records",
        ),
        metric("causal_message_edges", len(graph.message_edge), "edges"),
        metric("causal_orphans", len(graph.orphans()), "spans"),
    ]


# ---------------------------------------------------------------------------
# rerun_makespan — checkpointed vs full-rerun faulty makespan
# ---------------------------------------------------------------------------

#: Two chained group-bys: two MapReduce jobs with one internal job
#: boundary, so a checkpoint can land between them.
_RERUN_SCRIPT = """
A = LOAD 'in' AS (k:int, v:int);
B = FILTER A BY v IS NOT NULL;
G = GROUP B BY k;
C = FOREACH G GENERATE group AS k, COUNT(B) AS n;
H = GROUP C BY n;
D = FOREACH H GENERATE group AS n, COUNT(C) AS m;
STORE D INTO 'out';
"""


def _rerun_makespan(smoke: bool) -> list[Metric]:
    """Faulty makespan with the checkpoint tier vs full rerun.

    One slow node pushes the downstream job past the verifier timeout,
    forcing a rerun.  With the checkpoint tier on (expected-rerun-cost
    placement + eager verdict-time commits) the upstream job's verified
    output commits during the failed attempt and the rerun reuses it;
    the checkpoint-free baseline has no intermediate verification
    point, so its rerun recomputes the whole sub-graph.  The gate is
    ``checkpointed_strictly_lower`` — checkpoints must shorten the
    faulty makespan — while ``output_digest_match`` proves they never
    change the published bytes.
    """
    import hashlib

    from repro.chaos.runner import workload
    from repro.common.config import (
        ClusterBFTConfig,
        ClusterConfig,
        SystemConfig,
    )
    from repro.common.records import encode_record
    from repro.core.controller import ClusterBFTController
    from repro.faults.behaviors import SlowBehavior
    from repro.faults.injection import FaultPlan

    rows = 120 if smoke else 320

    def one_run(checkpoints: bool, density: float):
        config = SystemConfig(
            cluster=ClusterConfig(
                num_nodes=12, slots_per_node=3, heartbeat_period=0.2
            ),
            bft=ClusterBFTConfig(
                f=1,
                replication=4,
                verification_points=0,
                checkpoints=checkpoints,
                checkpoint_density=density,
                verifier_timeout=6.0,
            ),
            seed=20131209,
        )
        plan = FaultPlan()
        plan.assign("node_0003", SlowBehavior(factor=8.0))
        controller = ClusterBFTController(
            config, fault_plan=plan, block_bytes=2048
        )
        controller.load_input("in", workload(7)[:rows])
        result = controller.run_assured(_RERUN_SCRIPT)
        hasher = hashlib.sha256()
        for path in sorted(result.outputs):
            hasher.update(path.encode())
            for record in result.outputs[path]:
                hasher.update(encode_record(record))
        return result, hasher.hexdigest()

    checkpointed, digest_checkpointed = one_run(True, 1.0)
    full, digest_full = one_run(False, 0.0)
    return [
        metric(
            "makespan_checkpointed",
            round(checkpointed.latency, 6),
            "simulated_seconds",
        ),
        metric(
            "makespan_full_rerun", round(full.latency, 6), "simulated_seconds"
        ),
        metric(
            "makespan_saving",
            round(full.latency - checkpointed.latency, 6),
            "simulated_seconds",
        ),
        metric(
            "checkpointed_strictly_lower",
            int(checkpointed.latency < full.latency),
            "bool",
        ),
        metric(
            "output_digest_match",
            int(digest_checkpointed == digest_full),
            "bool",
        ),
        metric("assured_checkpointed", int(checkpointed.assured), "bool"),
        metric("assured_full_rerun", int(full.assured), "bool"),
        metric("attempts_checkpointed", checkpointed.attempts, "attempts"),
        metric("attempts_full_rerun", full.attempts, "attempts"),
        metric(
            "checkpoint_commits", checkpointed.checkpoint_commits, "commits"
        ),
        metric("reused_jobs", checkpointed.reused_jobs, "jobs"),
    ]


# ---------------------------------------------------------------------------
# service_traffic — multi-tenant open-loop traffic over the service tier
# ---------------------------------------------------------------------------


def _service_traffic(smoke: bool) -> list[Metric]:
    from repro.service.bench import run_traffic_bench

    return run_traffic_bench(smoke)


SUITES: tuple[BenchSpec, ...] = (
    BenchSpec(
        name="fig12",
        description="suspicion saturation from an isolation-simulator trace",
        seed=12,
        run=_fig12,
    ),
    BenchSpec(
        name="fig13",
        description="suspicion spike peaks across seeds (trace-backed)",
        seed=3,
        run=_fig13,
    ),
    BenchSpec(
        name="exec_groupcount",
        description="assured execution latency/verification split from a trace",
        seed=20131209,
        run=_exec,
    ),
    BenchSpec(
        name="geo_placement",
        description="assured latency vs. region placement: flat, 2-region, "
        "3-region and slow-region layouts under one WAN latency",
        seed=20131209,
        run=_geo,
    ),
    BenchSpec(
        name="trace_overhead",
        description="causal-tracing overhead: same-seed untraced vs traced "
        "vs causal-traced output digests and simulated latency (must match)",
        seed=20131209,
        run=_trace_overhead,
    ),
    BenchSpec(
        name="rerun_makespan",
        description="faulty makespan with the checkpoint tier (rerun-cost "
        "placement + verdict-time commits) vs checkpoint-free full rerun — "
        "must be strictly lower with byte-identical outputs",
        seed=20131209,
        run=_rerun_makespan,
    ),
    BenchSpec(
        name="service_traffic",
        description="multi-tenant open-loop traffic: jobs/sec, p50/p99 "
        "admission-to-verdict latency, cross-tenant quarantine",
        seed=20131209,
        run=_service_traffic,
    ),
)


def spec_by_name(name: str) -> BenchSpec:
    for spec in SUITES:
        if spec.name == name:
            return spec
    known = ", ".join(spec.name for spec in SUITES)
    raise KeyError(f"unknown benchmark {name!r} (known: {known})")
