"""Inline waivers: ``# lint: allow DET002 <reason>``.

A waiver written on the same line as a finding suppresses that rule on
that line; a waiver on its own line covers the line immediately below
(so statements too long to share a line stay waivable).  Waivers require
a reason and must actually suppress something — a reasonless or unused
waiver is itself reported (WAIVE001 / WAIVE002), keeping the exception
list honest as code moves around.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic

#: Matches the comment body of a waiver: marker, rule list, then reason.
WAIVER_RE = re.compile(
    r"#\s*lint:\s*allow\s+"
    r"(?P<rules>[A-Z][A-Z0-9]*\d(?:\s*,\s*[A-Z][A-Z0-9]*\d)*)"
    r"(?:\s+(?P<reason>\S.*?))?\s*$"
)

#: Cheap pre-filter: any comment mentioning the waiver marker.
MARKER_RE = re.compile(r"#\s*lint:")


@dataclass
class Waiver:
    """One parsed waiver comment."""

    rules: tuple[str, ...]
    line: int  # line the comment is written on
    target_line: int  # line the waiver applies to
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, rule: str, line: int) -> bool:
        return rule in self.rules and line == self.target_line


def collect_waivers(source: str) -> tuple[list[Waiver], list[tuple[int, str]]]:
    """Extract waivers from ``source``.

    Returns ``(waivers, malformed)`` where ``malformed`` lists
    ``(line, comment_text)`` pairs for comments that carry the
    ``# lint:`` marker but do not parse as a waiver.
    """
    waivers: list[Waiver] = []
    malformed: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers, malformed  # unparseable source is reported elsewhere
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        if not MARKER_RE.search(token.string):
            continue
        match = WAIVER_RE.search(token.string)
        row, col = token.start
        if match is None:
            malformed.append((row, token.string.strip()))
            continue
        standalone = token.line[:col].strip() == ""
        rules = tuple(r.strip() for r in match.group("rules").split(","))
        waivers.append(
            Waiver(
                rules=rules,
                line=row,
                target_line=row + 1 if standalone else row,
                reason=(match.group("reason") or "").strip(),
            )
        )
    return waivers, malformed


def apply_waivers(
    diagnostics: list[Diagnostic],
    waivers: list[Waiver],
    malformed: list[tuple[int, str]],
    path: str,
) -> list[Diagnostic]:
    """Suppress waived diagnostics and report waiver misuse.

    Returns the full diagnostic list: findings, waived findings (kept,
    flagged ``waived=True``), plus WAIVE001 (reasonless waiver),
    WAIVE002 (waiver that suppressed nothing) and WAIVE003 (malformed
    waiver comment) findings.
    """
    out: list[Diagnostic] = []
    for diagnostic in diagnostics:
        waiver = next(
            (w for w in waivers if w.covers(diagnostic.rule, diagnostic.line)),
            None,
        )
        if waiver is not None:
            waiver.used = True
            out.append(diagnostic.waive(waiver.reason or "no reason given"))
        else:
            out.append(diagnostic)
    for waiver in waivers:
        if not waiver.reason:
            out.append(
                Diagnostic(
                    rule="WAIVE001",
                    path=path,
                    line=waiver.line,
                    message=(
                        "waiver for "
                        + ", ".join(waiver.rules)
                        + " has no reason; write `# lint: allow "
                        + waiver.rules[0]
                        + " <reason>`"
                    ),
                )
            )
        if not waiver.used:
            out.append(
                Diagnostic(
                    rule="WAIVE002",
                    path=path,
                    line=waiver.line,
                    message=(
                        "unused waiver for "
                        + ", ".join(waiver.rules)
                        + "; nothing on line "
                        + str(waiver.target_line)
                        + " triggers it"
                    ),
                )
            )
    for line, text in malformed:
        out.append(
            Diagnostic(
                rule="WAIVE003",
                path=path,
                line=line,
                message=f"malformed waiver comment: {text!r}",
            )
        )
    return out
