"""Static plan checker (Layer 2): PLAN001–PLAN007.

Pre-execution validation over compiled dataflow plans.  Everything the
interpreter or MapReduce compiler would crash on at runtime — cycles,
operator arity, schema/arity inference across operators, dangling
aliases — is reported as a batch of precise diagnostics with operator
and script-line locations, plus two marker invariants from the paper:
every sink must be covered by a verification point, and the replication
degree must be one of the enumerated guarantee levels
``r ∈ {f+1, 2f+1, 3f+1}`` (§3.3).

Rule catalogue::

    PLAN001  plan contains a cycle
    PLAN002  operator arity/structure violation
    PLAN003  schema inference failure
    PLAN004  plan has no STORE
    PLAN005  unused alias (vertex never reaches a STORE)
    PLAN006  sink not covered by a verification point
    PLAN007  replication degree outside {f+1, 2f+1, 3f+1}
    PLAN008  service tenant-trace admission config problem
             (zero quota, unknown workload, malformed arrivals)
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.dataflow.operators import StoreOp, VerifyOp
from repro.dataflow.plan import LogicalPlan, VertexId
from repro.lint.diagnostics import Diagnostic

#: Maps :meth:`LogicalPlan.problems` kinds to rule ids.
_PROBLEM_RULES = {
    "cycle": "PLAN001",
    "arity": "PLAN002",
    "schema": "PLAN003",
    "no-store": "PLAN004",
    "dangling": "PLAN005",
}


class PlanCheckError(PlanError):
    """Raised when a pre-execution check rejects a plan.

    Carries every diagnostic (not just the first) so callers can render
    the full batch.
    """

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = [d.format() for d in diagnostics]
        count = len(diagnostics)
        header = f"plan check failed with {count} finding{'s' if count != 1 else ''}:"
        super().__init__("\n".join([header] + lines))


def _location(plan: LogicalPlan, vid: VertexId | None) -> tuple[int, str]:
    """(script line, human label) for a vertex — 0 when unknown."""
    if vid is None:
        return 0, ""
    op = plan.op(vid)
    line = op.source_line or 0
    label = f"vertex [{vid}] {op.describe()}"
    if op.alias:
        label += f" ({op.alias})"
    return line, label


def check_plan(plan: LogicalPlan, path: str = "<plan>") -> list[Diagnostic]:
    """Structure + schema diagnostics for a logical plan (PLAN001–005)."""
    diagnostics: list[Diagnostic] = []
    for problem in plan.problems():
        line, label = _location(plan, problem.vid)
        message = f"{label}: {problem.message}" if label else problem.message
        diagnostics.append(
            Diagnostic(
                rule=_PROBLEM_RULES[problem.kind],
                path=path,
                line=line,
                message=message,
            )
        )
    return diagnostics


def check_sink_coverage(
    instrumented_plan: LogicalPlan, path: str = "<plan>"
) -> list[Diagnostic]:
    """PLAN006: every STORE must consume a verified stream.

    Operates on an *instrumented* plan (after
    :func:`repro.core.instrument.instrument`): a covered sink's direct
    parent is the VerifyOp guarding its output stream.  An uncovered
    sink means the user-visible output could be committed without any
    digest quorum over the very bytes written.
    """
    diagnostics: list[Diagnostic] = []
    for vid in instrumented_plan.sinks():
        op = instrumented_plan.op(vid)
        if not isinstance(op, StoreOp):
            continue
        parents = instrumented_plan.inputs(vid)
        covered = any(
            isinstance(instrumented_plan.op(parent), VerifyOp) for parent in parents
        )
        if not covered:
            line, label = _location(instrumented_plan, vid)
            diagnostics.append(
                Diagnostic(
                    rule="PLAN006",
                    path=path,
                    line=line,
                    message=(
                        f"{label}: STORE {op.path!r} is not covered by a "
                        "verification point; its output stream can commit "
                        "without a digest quorum"
                    ),
                )
            )
    return diagnostics


def check_config(config, path: str = "<config>") -> list[Diagnostic]:
    """PLAN007: r must be an enumerated guarantee level (paper §3.3).

    ``config`` is any object with ``f`` and ``replication`` attributes
    (duck-typed so callers need not import the config module).
    """
    f = config.f
    replication = config.replication
    allowed = {f + 1, 2 * f + 1, 3 * f + 1}
    if replication in allowed:
        return []
    options = ", ".join(str(r) for r in sorted(allowed))
    return [
        Diagnostic(
            rule="PLAN007",
            path=path,
            line=0,
            message=(
                f"replication degree r={replication} is not an enumerated "
                f"guarantee level for f={f}; choose r ∈ {{{options}}} "
                "(f+1 optimistic, 2f+1 no-omission, 3f+1 full BFT)"
            ),
        )
    ]


def check_service_trace(text: str, path: str = "<trace>") -> list[Diagnostic]:
    """PLAN008: static admission-config check over a tenant trace.

    The same fail-closed validation the service applies at load time
    (:func:`repro.service.tenants.trace_problems`) — a trace declaring
    a zero quota, referencing an unknown workload, or carrying
    malformed arrivals would be refused by ``repro serve``, so the
    linter flags it before anything runs.
    """
    import json as _json

    from repro.service.tenants import trace_problems

    try:
        data = _json.loads(text)
    except ValueError as exc:
        return [
            Diagnostic(
                rule="PLAN008",
                path=path,
                line=getattr(exc, "lineno", 0) or 0,
                message=f"tenant trace is not valid JSON: {exc}",
            )
        ]
    return [
        Diagnostic(rule="PLAN008", path=path, line=0, message=problem)
        for problem in trace_problems(data)
    ]


def check_prepared(prepared, path: str = "<script>") -> list[Diagnostic]:
    """All plan-checker diagnostics for a prepared script.

    ``prepared`` is duck-typed against
    :class:`repro.core.request_handler.PreparedScript`: it must expose
    ``plan``, ``instrumented.plan`` and ``config``.
    """
    diagnostics = check_plan(prepared.plan, path)
    diagnostics.extend(check_sink_coverage(prepared.instrumented.plan, path))
    diagnostics.extend(check_config(prepared.config, path))
    return diagnostics


def precheck_plan(plan: LogicalPlan, path: str = "<plan>") -> None:
    """Raise :class:`PlanCheckError` listing every defect, or return.

    The interpreter's pre-execution hook: one aggregated, located error
    report instead of whichever runtime crash happens first.
    """
    diagnostics = check_plan(plan, path)
    if diagnostics:
        raise PlanCheckError(diagnostics)
