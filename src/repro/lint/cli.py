"""CLI glue for ``repro lint``.

Three modes share the subcommand:

* ``repro lint PATH…`` — Layer 1, the determinism linter over Python
  sources.  Exit 1 on any active finding (waived findings don't fail).
* ``repro lint --plan SCRIPT [-f N] [-r N] [-n N]`` — Layer 2, the
  static plan checker over a Pig-subset script: parse without
  validation, prepare (marker placement + instrumentation) and report
  every defect with script-line locations.
* ``repro lint --deep PATH…`` — Layer 3, the whole-program passes
  (interprocedural taint FLOW001–004, WAL/replay coverage WAL001–003,
  audit attribution AUD001) merged with Layer 1, gated by the
  committed findings baseline (``LINT_BASELINE.json``): findings not
  in the baseline exit 1, stale baseline entries exit 1 until
  ``--update-baseline`` shrinks the file.

All modes support ``--format json``; ``--format github`` additionally
emits GitHub workflow annotations for CI.
"""

from __future__ import annotations

import argparse
import json

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import lint_paths
from repro.lint.rules import all_rules, rules_by_id


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism linter and plan checker",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="Python files/directories to lint (Layer 1)",
    )
    lint.add_argument(
        "--plan",
        metavar="SCRIPT",
        default=None,
        help="check a Pig-subset script's plan instead (Layer 2)",
    )
    lint.add_argument(
        "--service-trace",
        metavar="TRACE.json",
        default=None,
        help="check a service tenant-trace's admission config instead "
        "(PLAN008: zero quotas, unknown workloads, malformed arrivals)",
    )
    lint.add_argument(
        "-f",
        type=int,
        default=1,
        dest="faults",
        help="expected failures for --plan invariants",
    )
    lint.add_argument(
        "-r",
        type=int,
        default=None,
        dest="replication",
        help="replication degree for --plan invariants",
    )
    lint.add_argument(
        "-n",
        type=int,
        default=1,
        dest="points",
        help="verification points for --plan instrumentation",
    )
    lint.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--show-waived", action="store_true", help="also print waived findings"
    )
    lint.add_argument(
        "--format", choices=("text", "json", "github"), default="text"
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (FLOW/WAL/AUD) and gate "
        "against the findings baseline",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="findings baseline for --deep (default: LINT_BASELINE.json; "
        "a missing file means an empty baseline)",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current --deep findings",
    )


def _list_rules() -> int:
    from repro.lint.flow.deep import deep_rules

    for rule in all_rules():
        exempt = (
            f"  (exempt: {', '.join(rule.exempt_suffixes)})"
            if rule.exempt_suffixes
            else ""
        )
        print(f"{rule.rule_id}  {rule.title}{exempt}")
    for info in deep_rules():
        print(f"{info.rule_id}  {info.title}  (deep)")
    return 0


def _github_annotations(report: LintReport) -> str:
    lines = []
    for diagnostic in report.sorted_diagnostics():
        if diagnostic.waived:
            continue
        message = diagnostic.message.replace("\n", " ")
        lines.append(
            f"::error file={diagnostic.path},line={diagnostic.line},"
            f"col={diagnostic.column},title={diagnostic.rule}::{message}"
        )
    lines.append(report.render(show_waived=False))
    return "\n".join(lines)


def _emit(report: LintReport, args) -> int:
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    elif args.format == "github":
        print(_github_annotations(report))
    else:
        print(report.render(show_waived=args.show_waived))
    return report.exit_code()


def _plan_report(args) -> LintReport:
    # Imported lazily: plan checking pulls in the parser/compiler stack,
    # which source linting doesn't need.
    from repro.common.config import ClusterBFTConfig
    from repro.common.errors import ParseError
    from repro.dataflow.piglatin import parse_script
    from repro.lint.plan_rules import check_config, check_plan, check_sink_coverage

    report = LintReport(files_checked=1)
    with open(args.plan) as handle:
        source = handle.read()
    try:
        plan = parse_script(source, validate=False)
    except ParseError as exc:
        report.diagnostics.append(
            Diagnostic(
                rule="PLAN000",
                path=args.plan,
                line=getattr(exc, "line", 0) or 0,
                column=getattr(exc, "column", 0) or 0,
                message=f"parse error: {exc}",
            )
        )
        return report
    report.extend(check_plan(plan, args.plan))

    replication = args.replication or 3 * args.faults + 1
    report.extend(
        check_config(
            argparse.Namespace(f=args.faults, replication=replication), args.plan
        )
    )
    structural = [d for d in report.findings if "PLAN000" <= d.rule <= "PLAN005"]
    if structural:
        return report  # a broken plan cannot be instrumented meaningfully

    from repro.core.request_handler import RequestHandler

    # Instrumentation shape doesn't depend on r, so clamp it to a value
    # the config accepts even when PLAN007 already fired above.
    config = ClusterBFTConfig(
        f=args.faults,
        replication=max(replication, args.faults + 1),
        verification_points=args.points,
    )
    sizes = {path: 1 for path in plan.load_paths().values()}
    prepared = RequestHandler(config).prepare(plan, sizes)
    report.extend(check_sink_coverage(prepared.instrumented.plan, args.plan))
    return report


def _service_trace_report(args) -> LintReport:
    from repro.lint.plan_rules import check_service_trace

    report = LintReport(files_checked=1)
    try:
        with open(args.service_trace) as handle:
            text = handle.read()
    except OSError as exc:
        raise SystemExit(f"repro lint: cannot read trace: {exc}")
    report.extend(check_service_trace(text, args.service_trace))
    return report


def _deep_report(args, selected: list[str] | None) -> tuple[LintReport, int]:
    """Merged Layer 1 + Layer 3 report, gated by the baseline.

    Returns ``(report, extra_exit)`` where ``extra_exit`` is 1 when the
    baseline itself demands failure (stale entries) independently of
    the report's own findings.
    """
    from repro.lint.flow.baseline import (
        DEFAULT_PATH,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.flow.deep import DEEP_RULE_IDS, deep_lint

    layer1_sel = deep_sel = None
    run_layer1 = run_deep = True
    if selected is not None:
        layer1_sel = [s for s in selected if s not in DEEP_RULE_IDS]
        deep_sel = [s for s in selected if s in DEEP_RULE_IDS]
        run_layer1 = bool(layer1_sel)
        run_deep = bool(deep_sel)

    report = LintReport()
    if run_layer1:
        rules = rules_by_id(layer1_sel) if layer1_sel else None
        layer1 = lint_paths(args.paths, rules)
        report.extend(layer1.diagnostics)
        report.files_checked = layer1.files_checked
    if run_deep:
        deep = deep_lint(args.paths, deep_sel)
        report.extend(deep.diagnostics)
        report.files_checked = max(report.files_checked, deep.files_checked)

    baseline_path = args.baseline or DEFAULT_PATH
    baseline = load_baseline(baseline_path)
    if args.update_baseline:
        write_baseline(baseline_path, report.findings)
        print(
            f"baseline {baseline_path} updated: "
            f"{len(report.findings)} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'}"
        )
        report.diagnostics = [
            d.waive(f"baselined ({baseline_path})") if not d.waived else d
            for d in report.diagnostics
        ]
        return report, 0

    new_findings, _, stale = apply_baseline(report.findings, baseline)
    new_ids = {id(d) for d in new_findings}
    report.diagnostics = [
        d
        if d.waived or id(d) in new_ids
        else d.waive(f"baselined ({baseline_path})")
        for d in report.diagnostics
    ]
    extra_exit = 0
    if stale:
        extra_exit = 1
        for entry in stale:
            print(
                f"{baseline_path}: stale baseline entry {entry!r} — the "
                "finding is gone; rerun with --update-baseline to shrink "
                "the baseline"
            )
    return report, extra_exit


def cmd_lint(args) -> int:
    if args.list_rules:
        return _list_rules()
    if args.plan is not None:
        return _emit(_plan_report(args), args)
    if args.service_trace is not None:
        return _emit(_service_trace_report(args), args)
    if not args.paths:
        raise SystemExit(
            "repro lint: give PATH arguments, --plan SCRIPT, or "
            "--service-trace TRACE.json"
        )
    selected = None
    if args.select:
        selected = [s.strip() for s in args.select.split(",") if s.strip()]
    if args.deep:
        try:
            report, extra_exit = _deep_report(args, selected)
        except ValueError as exc:
            raise SystemExit(f"repro lint: {exc}")
        return max(_emit(report, args), extra_exit)
    rules = None
    if selected:
        from repro.lint.flow.deep import DEEP_RULE_IDS

        deep_only = [s for s in selected if s in DEEP_RULE_IDS]
        if deep_only:
            raise SystemExit(
                f"repro lint: rule(s) {', '.join(deep_only)} are "
                "whole-program rules — add --deep"
            )
        rules = rules_by_id(selected)
    report = lint_paths(args.paths, rules)
    return _emit(report, args)
