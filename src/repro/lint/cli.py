"""CLI glue for ``repro lint``.

Two modes share the subcommand:

* ``repro lint PATH…`` — Layer 1, the determinism linter over Python
  sources.  Exit 1 on any active finding (waived findings don't fail).
* ``repro lint --plan SCRIPT [-f N] [-r N] [-n N]`` — Layer 2, the
  static plan checker over a Pig-subset script: parse without
  validation, prepare (marker placement + instrumentation) and report
  every defect with script-line locations.

Both modes support ``--format json`` for tooling.
"""

from __future__ import annotations

import argparse
import json

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import lint_paths
from repro.lint.rules import all_rules, rules_by_id


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism linter and plan checker",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="Python files/directories to lint (Layer 1)",
    )
    lint.add_argument(
        "--plan",
        metavar="SCRIPT",
        default=None,
        help="check a Pig-subset script's plan instead (Layer 2)",
    )
    lint.add_argument(
        "--service-trace",
        metavar="TRACE.json",
        default=None,
        help="check a service tenant-trace's admission config instead "
        "(PLAN008: zero quotas, unknown workloads, malformed arrivals)",
    )
    lint.add_argument(
        "-f",
        type=int,
        default=1,
        dest="faults",
        help="expected failures for --plan invariants",
    )
    lint.add_argument(
        "-r",
        type=int,
        default=None,
        dest="replication",
        help="replication degree for --plan invariants",
    )
    lint.add_argument(
        "-n",
        type=int,
        default=1,
        dest="points",
        help="verification points for --plan instrumentation",
    )
    lint.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--show-waived", action="store_true", help="also print waived findings"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )


def _list_rules() -> int:
    for rule in all_rules():
        exempt = (
            f"  (exempt: {', '.join(rule.exempt_suffixes)})"
            if rule.exempt_suffixes
            else ""
        )
        print(f"{rule.rule_id}  {rule.title}{exempt}")
    return 0


def _emit(report: LintReport, args) -> int:
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render(show_waived=args.show_waived))
    return report.exit_code()


def _plan_report(args) -> LintReport:
    # Imported lazily: plan checking pulls in the parser/compiler stack,
    # which source linting doesn't need.
    from repro.common.config import ClusterBFTConfig
    from repro.common.errors import ParseError
    from repro.dataflow.piglatin import parse_script
    from repro.lint.plan_rules import check_config, check_plan, check_sink_coverage

    report = LintReport(files_checked=1)
    with open(args.plan) as handle:
        source = handle.read()
    try:
        plan = parse_script(source, validate=False)
    except ParseError as exc:
        report.diagnostics.append(
            Diagnostic(
                rule="PLAN000",
                path=args.plan,
                line=getattr(exc, "line", 0) or 0,
                column=getattr(exc, "column", 0) or 0,
                message=f"parse error: {exc}",
            )
        )
        return report
    report.extend(check_plan(plan, args.plan))

    replication = args.replication or 3 * args.faults + 1
    report.extend(
        check_config(
            argparse.Namespace(f=args.faults, replication=replication), args.plan
        )
    )
    structural = [d for d in report.findings if "PLAN000" <= d.rule <= "PLAN005"]
    if structural:
        return report  # a broken plan cannot be instrumented meaningfully

    from repro.core.request_handler import RequestHandler

    # Instrumentation shape doesn't depend on r, so clamp it to a value
    # the config accepts even when PLAN007 already fired above.
    config = ClusterBFTConfig(
        f=args.faults,
        replication=max(replication, args.faults + 1),
        verification_points=args.points,
    )
    sizes = {path: 1 for path in plan.load_paths().values()}
    prepared = RequestHandler(config).prepare(plan, sizes)
    report.extend(check_sink_coverage(prepared.instrumented.plan, args.plan))
    return report


def _service_trace_report(args) -> LintReport:
    from repro.lint.plan_rules import check_service_trace

    report = LintReport(files_checked=1)
    try:
        with open(args.service_trace) as handle:
            text = handle.read()
    except OSError as exc:
        raise SystemExit(f"repro lint: cannot read trace: {exc}")
    report.extend(check_service_trace(text, args.service_trace))
    return report


def cmd_lint(args) -> int:
    if args.list_rules:
        return _list_rules()
    if args.plan is not None:
        return _emit(_plan_report(args), args)
    if args.service_trace is not None:
        return _emit(_service_trace_report(args), args)
    if not args.paths:
        raise SystemExit(
            "repro lint: give PATH arguments, --plan SCRIPT, or "
            "--service-trace TRACE.json"
        )
    rules = None
    if args.select:
        rules = rules_by_id([s.strip() for s in args.select.split(",") if s.strip()])
    report = lint_paths(args.paths, rules)
    return _emit(report, args)
