"""Determinism rules DET001–DET004.

Each rule targets one class of entropy that has historically broken the
byte-identical-replay invariant:

* **DET001** — direct ``random.Random(...)`` construction or
  ``random.*`` module-state calls.  All streams must derive from
  :class:`~repro.common.rng.RngRegistry` so adding a consumer never
  perturbs existing streams.
* **DET002** — wall-clock reads (``time.time``, ``datetime.now``, …).
  Simulated time comes from the event loop; host time is only legal in
  the telemetry wall-clock profile path, and only under a waiver.
* **DET003** — order-sensitive consumption of ``set``/``frozenset``
  values (iteration, ``list(...)``, ``join``) without ``sorted(...)``.
  Set order is salted per process, so anything it feeds — digests,
  schedules, audit output — diverges between replicas.
* **DET004** — floating-point accumulation inside digest/hash paths.
  Float summation is order- and platform-sensitive; digests must fold
  integers.
"""

from __future__ import annotations

import ast
import re

from repro.lint.diagnostics import Diagnostic
from repro.lint.rules import (
    ModuleSource,
    Rule,
    collect_imports,
    register,
    resolve_dotted,
)

#: Constructors of stateful generators and module-level state functions.
RANDOM_CONSTRUCTORS = {"random.Random", "random.SystemRandom"}
RANDOM_MODULE_STATE = {
    "random.seed",
    "random.getstate",
    "random.setstate",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.randbytes",
    "random.getrandbits",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.triangular",
    "random.betavariate",
    "random.binomialvariate",
    "random.expovariate",
    "random.gammavariate",
    "random.gauss",
    "random.lognormvariate",
    "random.normalvariate",
    "random.vonmisesvariate",
    "random.paretovariate",
    "random.weibullvariate",
}

WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class DirectRandomRule(Rule):
    """DET001: entropy must route through RngRegistry."""

    rule_id = "DET001"
    title = "direct random construction / module-state use"
    exempt_suffixes = ("repro/common/rng.py",)

    def check(self, module: ModuleSource) -> list[Diagnostic]:
        imports = collect_imports(module.tree)
        diagnostics = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted in RANDOM_CONSTRUCTORS:
                diagnostics.append(
                    self.diagnostic(
                        module,
                        node,
                        f"direct {dotted}(...) bypasses RngRegistry; derive a "
                        "named stream via repro.common.rng.RngRegistry instead",
                    )
                )
            elif dotted in RANDOM_MODULE_STATE:
                diagnostics.append(
                    self.diagnostic(
                        module,
                        node,
                        f"{dotted}() uses shared module state; draw from an "
                        "RngRegistry stream instead",
                    )
                )
        return diagnostics


@register
class WallClockRule(Rule):
    """DET002: simulated components must not read host time."""

    rule_id = "DET002"
    title = "wall-clock read outside the telemetry wall-clock path"

    def check(self, module: ModuleSource) -> list[Diagnostic]:
        imports = collect_imports(module.tree)
        diagnostics = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, imports)
            if dotted in WALL_CLOCK:
                diagnostics.append(
                    self.diagnostic(
                        module,
                        node,
                        f"{dotted}() reads the host clock; simulated time must "
                        "come from the event loop (waive only in the telemetry "
                        "wall-clock profile path)",
                    )
                )
        return diagnostics


# ----------------------------------------------------------------------
# DET003: unordered-set consumption
# ----------------------------------------------------------------------

#: ``func(set_expr)`` calls that preserve the set's (salted) order.
ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "iter", "enumerate", "reversed"}
#: ``obj.method(set_expr)`` calls that preserve the set's order.
ORDER_SENSITIVE_METHODS = {"join", "extend"}
SET_RETURNING_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
}
SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_annotation(annotation: ast.expr) -> bool:
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset")
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return False


class _SetScope(ast.NodeVisitor):
    """Checks one lexical scope for order-sensitive set consumption."""

    def __init__(self, rule: Rule, module: ModuleSource) -> None:
        self.rule = rule
        self.module = module
        self.set_names: set[str] = set()
        self.diagnostics: list[Diagnostic] = []

    # -- set typing (syntactic) ----------------------------------------

    def is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_RETURNING_METHODS
            ):
                return self.is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, SET_BINOPS):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def bind(self, target: ast.expr, value: ast.expr | None, annotation=None):
        if not isinstance(target, ast.Name):
            return
        if annotation is not None and _is_set_annotation(annotation):
            self.set_names.add(target.id)
        elif value is not None and self.is_set_expr(value):
            self.set_names.add(target.id)
        else:
            self.set_names.discard(target.id)  # rebinding clears set-ness

    # -- traversal ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are checked separately

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1:
            self.bind(node.targets[0], node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self.bind(node.target, node.value, annotation=node.annotation)

    def _flag(self, node: ast.expr, context: str) -> None:
        self.diagnostics.append(
            self.rule.diagnostic(
                self.module,
                node,
                f"{context} consumes an unordered set; wrap it in "
                "sorted(...) so replicas agree on the order",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self._flag(node.iter, "for-loop iteration")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        for generator in node.generators:
            if self.is_set_expr(generator.iter):
                self._flag(generator.iter, "list-comprehension iteration")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ORDER_SENSITIVE_BUILTINS
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._flag(node.args[0], f"{func.id}(...)")
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in ORDER_SENSITIVE_METHODS
            and node.args
            and self.is_set_expr(node.args[0])
        ):
            self._flag(node.args[0], f".{func.attr}(...)")
        self.generic_visit(node)


@register
class SetOrderRule(Rule):
    """DET003: iteration order over sets is process-salted entropy."""

    rule_id = "DET003"
    title = "order-sensitive consumption of an unordered set"

    def check(self, module: ModuleSource) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for scope in self._scopes(module.tree):
            checker = _SetScope(self, module)
            for statement in scope:
                checker.visit(statement)
            diagnostics.extend(checker.diagnostics)
        return diagnostics

    def _scopes(self, tree: ast.Module) -> list[list[ast.stmt]]:
        scopes = [list(tree.body)]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(list(node.body))
        return scopes


# ----------------------------------------------------------------------
# DET004: float accumulation in digest paths
# ----------------------------------------------------------------------

DIGEST_NAME_RE = re.compile(r"digest|hash|checksum|fingerprint", re.IGNORECASE)


def _has_float_arithmetic(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, float):
            return True
        if isinstance(child, ast.BinOp) and isinstance(child.op, ast.Div):
            return True
    return False


@register
class FloatDigestRule(Rule):
    """DET004: digests must accumulate integers, not floats."""

    rule_id = "DET004"
    title = "floating-point accumulation in a digest/hash path"

    def check(self, module: ModuleSource) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for function in self._digest_functions(module.tree):
            for node in ast.walk(function):
                if (
                    isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and _has_float_arithmetic(node.value)
                ):
                    diagnostics.append(
                        self.diagnostic(
                            module,
                            node,
                            "floating-point accumulation in digest path "
                            f"{function.name!r} is order/platform-sensitive; "
                            "accumulate integers (fixed-point) instead",
                        )
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum"
                    and any(_has_float_arithmetic(arg) for arg in node.args)
                ):
                    diagnostics.append(
                        self.diagnostic(
                            module,
                            node,
                            "sum() over floats in digest path "
                            f"{function.name!r}; float addition is not "
                            "associative — accumulate integers instead",
                        )
                    )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"
                ):
                    diagnostics.append(
                        self.diagnostic(
                            module,
                            node,
                            "float(...) conversion in digest path "
                            f"{function.name!r}; digest inputs must stay "
                            "integral",
                        )
                    )
        return diagnostics

    def _digest_functions(self, tree: ast.Module) -> list[ast.FunctionDef]:
        """Functions whose own or enclosing-class name marks a digest path."""
        functions: list[ast.FunctionDef] = []

        def walk(node: ast.AST, in_digest_class: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    walk(child, bool(DIGEST_NAME_RE.search(child.name)))
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if in_digest_class or DIGEST_NAME_RE.search(child.name):
                        functions.append(child)
                    walk(child, in_digest_class)
                else:
                    walk(child, in_digest_class)

        walk(tree, False)
        return functions
