"""AUD001: audit attribution inside the cooperative service loop.

The multi-tenant service drives every run's ``_assured_steps`` generator
cooperatively: ``RunDriver.advance`` sets ``controller.audit_context``
(the tenant attribution) before each step and clears it after.  Any
shared-state mutation that happens *between yields* — suspicion updates,
fault-analyzer observations, quarantine, eviction — therefore executes
under some tenant's attribution window, and the audit trail is the only
record of *which* tenant's run triggered it.  Two obligations follow for
code reachable from ``_assured_steps``:

* an audit record emitted there must forward the attribution
  (``**self.audit_context``), and
* a function that mutates cross-run shared state (suspicion, fault
  analyzer, scheduler quarantine, cluster eviction) must emit at least
  one attributed audit record alongside the mutation — a silent
  mutation is unattributable after the fact.
"""

from __future__ import annotations

import ast

from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.callgraph import CallSite, ProjectGraph
from repro.lint.flow.taint import _AUDIT_RECEIVERS, _receiver_components

#: The cooperative generator that runs under tenant attribution.
GENERATOR_NAME = "_assured_steps"
#: The attribute that carries the attribution.
CONTEXT_ATTR = "audit_context"

#: Cross-run shared-state mutators: ``receiver component -> methods``.
SHARED_MUTATORS = {
    "suspicion": {"record_fault", "clear_faults"},
    "fault_analyzer": {"observe"},
    "scheduler": {"quarantine"},
    "cluster": {"exclude"},
}


def _is_audit_record(site: CallSite) -> bool:
    return site.attr == "record" and bool(
        _receiver_components(site.receiver) & _AUDIT_RECEIVERS
    )


def _is_attributed(site: CallSite) -> bool:
    """True when the call forwards ``**...audit_context``."""
    for keyword in site.node.keywords:
        if keyword.arg is not None:
            continue
        value = keyword.value
        if isinstance(value, ast.Attribute) and value.attr == CONTEXT_ATTR:
            return True
        if isinstance(value, ast.Name) and value.id == CONTEXT_ATTR:
            return True
    return False


def _mutator_of(site: CallSite) -> str | None:
    if site.attr is None:
        return None
    for component in _receiver_components(site.receiver):
        methods = SHARED_MUTATORS.get(component.lstrip("_"))
        if methods and site.attr in methods:
            return f"{site.receiver}.{site.attr}"
    return None


def run_audit_check(graph: ProjectGraph) -> list[Diagnostic]:
    roots = [
        info.qualname
        for info in graph.functions.values()
        if info.name == GENERATOR_NAME and info.is_generator
    ]
    if not roots:
        return []
    tree = graph.reachable(roots)
    diagnostics: list[Diagnostic] = []
    for qualname in sorted(tree):
        info = graph.functions[qualname]
        chain = tuple(graph.chain(tree, qualname))
        mutations: list[tuple[CallSite, str]] = []
        has_attributed_record = False
        for site in info.calls:
            if _is_audit_record(site):
                if _is_attributed(site):
                    has_attributed_record = True
                else:
                    diagnostics.append(
                        Diagnostic(
                            rule="AUD001",
                            path=info.path,
                            line=site.line,
                            column=site.col,
                            message=(
                                f"audit record in {info.name!r} runs inside "
                                f"the {GENERATOR_NAME} attribution window "
                                f"but does not forward **{CONTEXT_ATTR} — "
                                "the emitting tenant is lost"
                            ),
                            symbol=qualname,
                            chain=chain,
                        )
                    )
            mutator = _mutator_of(site)
            if mutator is not None:
                mutations.append((site, mutator))
        if mutations and not has_attributed_record:
            site, mutator = mutations[0]
            names = ", ".join(sorted({m for _, m in mutations}))
            diagnostics.append(
                Diagnostic(
                    rule="AUD001",
                    path=info.path,
                    line=site.line,
                    column=site.col,
                    message=(
                        f"{info.name!r} mutates cross-run shared state "
                        f"({names}) inside the {GENERATOR_NAME} attribution "
                        "window without an attributed audit record "
                        f"(**{CONTEXT_ATTR}) — the mutation cannot be "
                        "traced to a tenant"
                    ),
                    symbol=qualname,
                    chain=chain,
                )
            )
    return diagnostics
