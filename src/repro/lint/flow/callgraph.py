"""Project model and call graph for whole-program lint passes.

Builds, from a set of Python files, an index of every module-level
function, class, and method plus a conservative call graph between
them.  The graph is *syntactic but resolution-aware*: imports are
resolved (``from repro.core import journal as wal`` → ``wal.RESUME`` is
``repro.core.journal.RESUME``), ``self.method(...)`` resolves through
the enclosing class and its project base classes, local variables whose
class is statically evident (``v = Verifier(...)`` / annotated
parameters) resolve method calls, and callables that merely *escape* —
passed as arguments, wrapped in ``functools.partial``, delegated to via
``yield from``, named in a decorator — contribute edges too, because a
reference that escapes may be called.

The model is an over-approximation of the real call relation (a
reference edge may never fire at runtime) and an under-approximation
where Python is irreducibly dynamic (``getattr`` with a computed name).
Both are the right trade-offs for the taint/WAL passes riding on top:
reachability findings are reviewed (and waivable), so recall matters
more than precision.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.rules import ImportMap, collect_imports, resolve_dotted

#: Bare-name builtins the taint pass treats as entropy sources when
#: called unshadowed (``id(obj)`` / default ``hash(obj)``).
TRACKED_BUILTINS = ("id", "hash")


@dataclass
class CallSite:
    """One call expression inside a function body."""

    line: int
    col: int
    node: ast.Call
    #: External dotted path (``time.monotonic``, ``os.environ.get``,
    #: ``builtins.id``) when the callee resolves outside the project.
    dotted: str | None = None
    #: Project function qualname when the callee resolves inside it.
    target: str | None = None
    #: Textual receiver chain for attribute calls (``self.journal``).
    receiver: str | None = None
    #: Attribute name for attribute calls (``append``).
    attr: str | None = None


@dataclass
class FunctionInfo:
    """One function/method/lambda under analysis."""

    qualname: str
    module: str
    path: str
    name: str
    lineno: int
    node: ast.AST
    class_qualname: str | None = None
    is_generator: bool = False
    calls: list[CallSite] = field(default_factory=list)
    #: Project functions referenced without being called at the site
    #: (callbacks, partial targets, decorator names, yield-from bases).
    refs: list[tuple[str, int]] = field(default_factory=list)
    #: External dotted attribute loads outside call position
    #: (``os.environ`` subscripts and the like).
    ext_uses: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    lineno: int
    path: str
    #: Base-class qualnames resolved inside the project (external bases
    #: are dropped — their methods are invisible anyway).
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)


class ProjectGraph:
    """The indexed project plus its call graph."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: ``module.NAME`` → string value, for module-level constants.
        self.constants: dict[str, str] = {}
        #: ``module.NAME`` → resolved element refs of module-level
        #: set/frozenset/tuple literals of names (declaration tables).
        self.const_sets: dict[str, list[str]] = {}
        self.modules: dict[str, str] = {}  # module → display path
        self.sources: dict[str, str] = {}  # display path → source text
        self.edges: dict[str, list[tuple[str, int]]] = {}

    # -- graph queries --------------------------------------------------

    def callees(self, qualname: str) -> list[tuple[str, int]]:
        return self.edges.get(qualname, [])

    def function(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def functions_named(self, name: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.name == name]

    def reachable(self, roots: list[str]) -> dict[str, tuple[str | None, int]]:
        """BFS over call/ref edges; returns ``{qualname: (parent, line)}``
        with parent ``None`` for roots — enough to rebuild call chains."""
        seen: dict[str, tuple[str | None, int]] = {}
        queue: deque[str] = deque()
        for root in roots:
            if root in self.functions and root not in seen:
                seen[root] = (None, self.functions[root].lineno)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee, line in self.callees(current):
                if callee not in seen and callee in self.functions:
                    seen[callee] = (current, line)
                    queue.append(callee)
        return seen

    def chain(
        self, tree: dict[str, tuple[str | None, int]], qualname: str
    ) -> list[str]:
        """Root→``qualname`` path through a :meth:`reachable` tree."""
        path = [qualname]
        parent, _ = tree.get(qualname, (None, 0))
        while parent is not None:
            path.append(parent)
            parent, _ = tree.get(parent, (None, 0))
        return list(reversed(path))

    def resolve_method(self, class_qualname: str, name: str) -> str | None:
        """Look ``name`` up on a class and its project bases (DFS)."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None


# ---------------------------------------------------------------------------
# module indexing (phase 1)
# ---------------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name, derived by walking up through packages."""
    resolved = Path(path)
    parts = [] if resolved.stem == "__init__" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists() and parent.name:
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) or resolved.stem


def _receiver_text(node: ast.expr) -> str | None:
    """Dotted receiver chain of plain names/attributes, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_text(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


@dataclass
class _ModuleIndex:
    """Everything phase 1 learns about one module."""

    module: str
    path: str
    tree: ast.Module
    imports: ImportMap
    #: local top-level name → function/class qualname ("defs" covers
    #: plain defs, lambdas-as-names, aliases and partial bindings).
    defs: dict[str, str] = field(default_factory=dict)


class _Indexer(ast.NodeVisitor):
    """Phase 1: register defs/classes/constants for one module."""

    def __init__(self, graph: ProjectGraph, index: _ModuleIndex) -> None:
        self.graph = graph
        self.index = index
        self.scope: list[str] = []  # class/function name stack
        self.class_stack: list[ClassInfo] = []

    def _qual(self, name: str) -> str:
        return ".".join([self.index.module, *self.scope, name])

    def _register_function(self, node, name: str) -> FunctionInfo:
        qualname = self._qual(name)
        info = FunctionInfo(
            qualname=qualname,
            module=self.index.module,
            path=self.index.path,
            name=name,
            lineno=getattr(node, "lineno", 0),
            node=node,
            class_qualname=(
                self.class_stack[-1].qualname if self.class_stack else None
            ),
            is_generator=_is_generator(node),
        )
        self.graph.functions[qualname] = info
        if self.class_stack:
            self.class_stack[-1].methods[name] = qualname
        elif not self.scope or self.scope[-1] not in (
            c.name for c in self.class_stack
        ):
            self.index.defs.setdefault(name, qualname)
        return info

    # -- defs -----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._register_function(node, node.name)
        self.scope.append(node.name)
        for statement in node.body:
            self.visit(statement)
        self.scope.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qual(node.name)
        info = ClassInfo(
            qualname=qualname,
            module=self.index.module,
            name=node.name,
            lineno=node.lineno,
            path=self.index.path,
        )
        # Bases resolve in phase 2 (they may name other modules' classes);
        # stash the raw expressions on the node for later.
        info_bases_raw = list(node.bases)
        info.bases = []  # filled by _resolve_bases
        self.graph.classes[qualname] = info
        self.index.defs.setdefault(node.name, qualname)
        setattr(info, "_bases_raw", info_bases_raw)
        self.class_stack.append(info)
        self.scope.append(node.name)
        for statement in node.body:
            self.visit(statement)
        self.scope.pop()
        self.class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.scope:  # only module-level bindings are indexed here
            return
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        value = node.value
        key = f"{self.index.module}.{name}"
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.graph.constants[key] = value.value
        elif isinstance(value, ast.Lambda):
            info = self._register_function(value, name)
            info.lineno = node.lineno
        elif isinstance(value, (ast.Set, ast.Tuple, ast.List)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set", "tuple")
        ):
            elements = (
                value.elts
                if isinstance(value, (ast.Set, ast.Tuple, ast.List))
                else _literal_elements(value)
            )
            refs = []
            for element in elements:
                dotted = resolve_dotted(element, self.index.imports)
                if dotted is None and isinstance(element, ast.Name):
                    dotted = f"{self.index.module}.{element.id}"
                if dotted is not None:
                    refs.append(dotted)
            if refs:
                self.graph.const_sets[key] = refs
        elif isinstance(value, (ast.Name, ast.Attribute)):
            # module-level alias: resolved lazily in phase 2 via defs.
            dotted = resolve_dotted(value, self.index.imports)
            if dotted is None and isinstance(value, ast.Name):
                dotted = value.id  # local alias, resolved against defs
            if dotted is not None:
                self.index.defs[name] = dotted
        elif isinstance(value, ast.Call) and _partial_target(value) is not None:
            # module-level `p = functools.partial(f, ...)` alias.
            target = _partial_target(value)
            dotted = resolve_dotted(target, self.index.imports)
            if dotted is None and isinstance(target, ast.Name):
                dotted = target.id
            if dotted is not None:
                self.index.defs[name] = dotted


def _partial_target(call: ast.Call) -> ast.expr | None:
    func = call.func
    is_partial = (isinstance(func, ast.Name) and func.id == "partial") or (
        isinstance(func, ast.Attribute) and func.attr == "partial"
    )
    if is_partial and call.args:
        return call.args[0]
    return None


def _literal_elements(call: ast.Call) -> list[ast.expr]:
    if call.args and isinstance(call.args[0], (ast.Set, ast.Tuple, ast.List)):
        return call.args[0].elts
    return []


def _is_generator(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if child is node:
            continue
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # nested defs have their own generator-ness
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            if _enclosing_is(node, child):
                return True
    return False


def _enclosing_is(root: ast.AST, target: ast.AST) -> bool:
    """True when ``target`` belongs to ``root``'s own body, not a
    nested function's."""

    class _Finder(ast.NodeVisitor):
        def __init__(self) -> None:
            self.found = False

        def visit_FunctionDef(self, node):  # noqa: N802
            if node is root:
                self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef
        visit_Lambda = visit_FunctionDef

        def generic_visit(self, node):  # noqa: N802
            if node is target:
                self.found = True
                return
            if (
                isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                )
                and node is not root
            ):
                return
            super().generic_visit(node)

    finder = _Finder()
    finder.generic_visit(root)
    return finder.found


# ---------------------------------------------------------------------------
# call resolution (phase 2)
# ---------------------------------------------------------------------------


class _CallResolver(ast.NodeVisitor):
    """Resolve the calls/references of one function body."""

    def __init__(
        self,
        graph: ProjectGraph,
        indexes: dict[str, _ModuleIndex],
        info: FunctionInfo,
    ) -> None:
        self.graph = graph
        self.indexes = indexes
        self.info = info
        self.index = indexes[info.module]
        #: local name → project function qualname (nested defs, aliases,
        #: lambdas, partial bindings).
        self.local_funcs: dict[str, str] = {}
        #: local name → project class qualname (for method resolution).
        self.local_types: dict[str, str] = {}
        self._call_funcs: set[int] = set()  # id()s of call-func nodes
        self._prime_locals()

    # -- local environment ---------------------------------------------

    def _prime_locals(self) -> None:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            return
        for child in getattr(node, "body", []):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = f"{self.info.qualname}.{child.name}"
                if nested in self.graph.functions:
                    self.local_funcs[child.name] = nested
        args = getattr(node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None:
                    cls = self._resolve_class(arg.annotation)
                    if cls is not None:
                        self.local_types[arg.arg] = cls
        for child in ast.walk(node):
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target = child.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                self._bind_local(target.id, child.value)
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                cls = self._resolve_class(child.annotation)
                if cls is not None:
                    self.local_types[child.target.id] = cls

    def _bind_local(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Call):
            # v = ClassName(...) → type; v = partial(f, ...) → callable f.
            cls = self._resolve_class(value.func)
            if cls is not None:
                self.local_types[name] = cls
                return
            dotted = self._dotted(value.func)
            if dotted in ("functools.partial", "partial") and value.args:
                target = self._resolve_callable(value.args[0])
                if target is not None:
                    self.local_funcs[name] = target
        elif isinstance(value, (ast.Name, ast.Attribute)):
            target = self._resolve_callable(value)
            if target is not None:
                self.local_funcs[name] = target
        elif isinstance(value, ast.Lambda):
            pass  # anonymous; taint sees its body via the enclosing walk

    # -- name resolution ------------------------------------------------

    def _dotted(self, node: ast.expr) -> str | None:
        dotted = resolve_dotted(node, self.index.imports)
        if dotted is not None:
            return dotted
        return _receiver_text(node)

    def _project_lookup(
        self, dotted: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Map a resolved dotted path onto a project function, chasing
        module-level aliases (``pkg.util.alias`` where ``alias = base``)
        across modules."""
        if dotted in _seen:
            return None
        _seen = _seen | {dotted}
        if dotted in self.graph.functions:
            return dotted
        if dotted in self.graph.classes:
            init = self.graph.resolve_method(dotted, "__init__")
            return init or None
        head, _, tail = dotted.rpartition(".")
        # Class attribute chains: pkg.mod.Class.method
        if head in self.graph.classes:
            return self.graph.resolve_method(head, tail)
        # Module-level aliases/partials recorded in that module's defs.
        if head in self.indexes:
            bound = self.indexes[head].defs.get(tail)
            if bound is not None:
                if "." not in bound:
                    bound = f"{head}.{bound}"
                if bound != dotted:
                    return self._project_lookup(bound, _seen)
        return None

    def _resolve_class(self, node: ast.expr) -> str | None:
        dotted = resolve_dotted(node, self.index.imports)
        candidates = []
        if dotted is not None:
            candidates.append(dotted)
        if isinstance(node, ast.Name):
            local = self.index.defs.get(node.id)
            if local is not None:
                candidates.append(local)
            candidates.append(f"{self.index.module}.{node.id}")
        for candidate in candidates:
            if candidate in self.graph.classes:
                return candidate
        return None

    def _resolve_callable(self, node: ast.expr) -> str | None:
        """Project function a name/attribute expression refers to."""
        if isinstance(node, ast.Name):
            if node.id in self.local_funcs:
                return self.local_funcs[node.id]
            bound = self.index.defs.get(node.id)
            if bound is not None:
                if "." not in bound:
                    bound = f"{self.info.module}.{bound}"
                resolved = self._project_lookup(bound)
                if resolved is not None:
                    return resolved
        dotted = resolve_dotted(node, self.index.imports)
        if dotted is not None:
            resolved = self._project_lookup(dotted)
            if resolved is not None:
                return resolved
        if isinstance(node, ast.Attribute):
            receiver = node.value
            # self.method / cls.method
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
                and self.info.class_qualname is not None
            ):
                return self.graph.resolve_method(
                    self.info.class_qualname, node.attr
                )
            # typed local: v.method where v's class is known
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in self.local_types
            ):
                return self.graph.resolve_method(
                    self.local_types[receiver.id], node.attr
                )
            # module-local class attr: ClassName.method (unbound)
            if isinstance(receiver, ast.Name):
                cls = self._resolve_class(receiver)
                if cls is not None:
                    return self.graph.resolve_method(cls, node.attr)
        return None

    # -- traversal ------------------------------------------------------

    def run(self) -> None:
        node = self.info.node
        for decorator in getattr(node, "decorator_list", []):
            expr = decorator.func if isinstance(decorator, ast.Call) else decorator
            target = self._resolve_callable(expr)
            if target is not None:
                self.info.refs.append((target, decorator.lineno))
        if isinstance(node, ast.Lambda):
            body: list[ast.AST] = [node.body]
        else:
            body = list(getattr(node, "body", []))
        for child in body:
            self.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested functions are resolved as their own FunctionInfo

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Anonymous lambdas belong to the enclosing function's body:
        # walk them so their calls (callbacks!) land on this function.
        self.visit(node.body)

    def visit_Call(self, node: ast.Call) -> None:
        site = CallSite(
            line=node.lineno,
            col=node.col_offset,
            node=node,
        )
        func = node.func
        self._call_funcs.add(id(func))
        site.target = self._resolve_callable(func)
        if isinstance(func, ast.Attribute):
            site.receiver = _receiver_text(func.value)
            site.attr = func.attr
            site.dotted = resolve_dotted(func, self.index.imports)
        elif isinstance(func, ast.Name):
            site.dotted = resolve_dotted(func, self.index.imports)
            if (
                site.dotted is None
                and site.target is None
                and func.id in TRACKED_BUILTINS
            ):
                site.dotted = f"builtins.{func.id}"
        self.info.calls.append(site)
        for child in ast.iter_child_nodes(func):
            self.visit(child)
        for arg in node.args:
            self._note_escape(arg)
            self.visit(arg)
        for keyword in node.keywords:
            self._note_escape(keyword.value)
            self.visit(keyword.value)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self._note_escape(node.value)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._note_escape(node.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._note_escape(node.value)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._call_funcs:
            dotted = resolve_dotted(node, self.index.imports)
            if dotted is not None and self._project_lookup(dotted) is None:
                self.info.ext_uses.append((dotted, node.lineno))
                return  # maximal chain recorded; skip sub-attributes
        self.generic_visit(node)

    def _note_escape(self, node: ast.expr) -> None:
        """A bare reference to a project function escaping into a call
        argument, return value, assignment or delegation: edge, because
        whoever receives it may call it."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            target = self._resolve_callable(node)
            if target is not None and target != self.info.qualname:
                self.info.refs.append((target, node.lineno))


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------


def build_project(files: list[Path]) -> ProjectGraph:
    """Index ``files`` and resolve the call graph."""
    graph = ProjectGraph()
    indexes: dict[str, _ModuleIndex] = {}
    for file_path in files:
        try:
            source = file_path.read_text()
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError):
            continue  # unreadable/unparseable files are reported by layer 1
        module = module_name_for(file_path)
        display = str(file_path).replace("\\", "/")
        index = _ModuleIndex(
            module=module,
            path=display,
            tree=tree,
            imports=collect_imports(tree),
        )
        indexes[module] = index
        graph.modules[module] = display
        graph.sources[display] = source
        _Indexer(graph, index).visit(tree)

    _resolve_bases(graph, indexes)

    for info in list(graph.functions.values()):
        resolver = _CallResolver(graph, indexes, info)
        resolver.run()
        edges = graph.edges.setdefault(info.qualname, [])
        for site in info.calls:
            if site.target is not None:
                edges.append((site.target, site.line))
        for target, line in info.refs:
            edges.append((target, line))
        # Nested defs always reach their parent scope's graph position:
        # add containment edges so locally-defined closures (submit_ready
        # & friends) are reachable whenever their parent is.
        for nested_name, nested_qual in resolver.local_funcs.items():
            if nested_qual.startswith(info.qualname + "."):
                edges.append((nested_qual, info.lineno))
    return graph


def _resolve_bases(
    graph: ProjectGraph, indexes: dict[str, _ModuleIndex]
) -> None:
    for info in graph.classes.values():
        raw = getattr(info, "_bases_raw", [])
        index = indexes.get(info.module)
        if index is None:
            continue
        for base in raw:
            dotted = resolve_dotted(base, index.imports)
            candidates = [dotted] if dotted else []
            if isinstance(base, ast.Name):
                local = index.defs.get(base.id)
                if local:
                    candidates.append(local)
                candidates.append(f"{info.module}.{base.id}")
            for candidate in candidates:
                if candidate in graph.classes and candidate != info.qualname:
                    info.bases.append(candidate)
                    break
