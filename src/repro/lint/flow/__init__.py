"""Layer 3: whole-program assurance analysis (``repro lint --deep``).

Layers 1 and 2 are per-file/per-plan pattern matchers; the properties
that actually reached review as bugs — resume verdict flips, torn-tail
mishandling — were *whole-program* mismatches between the journal's
write side and the replay side, or nondeterminism leaking through a
call chain into an assured sink.  This package analyses ``src/repro``
as one program:

* :mod:`repro.lint.flow.callgraph` — project model + call graph
  (modules, classes, methods, decorators, generators, lambdas,
  ``functools.partial``, cross-module aliasing, ``yield from``);
* :mod:`repro.lint.flow.taint` — interprocedural nondeterminism taint
  (FLOW001–FLOW004): entropy sources propagated through the graph into
  assured sinks, reported with the full source→sink call chain;
* :mod:`repro.lint.flow.walcheck` — WAL/replay coverage (WAL001–WAL003):
  every journal/ledger record kind written has a replay handler or an
  explicit no-replay declaration, no dead handlers, and replay-side
  field reads are a subset of append-side fields;
* :mod:`repro.lint.flow.audit_rules` — AUD001: shared-state mutations
  reachable from the cooperative ``_assured_steps`` generator carry
  audit attribution (``**self.audit_context``);
* :mod:`repro.lint.flow.baseline` — the findings-baseline ratchet
  backing the CI ``deep-lint`` gate (new findings exit 1, fixed
  findings must shrink the committed baseline);
* :mod:`repro.lint.flow.deep` — the orchestrator gluing the passes to
  the ``repro lint`` CLI, waivers included.
"""

from repro.lint.flow.deep import deep_lint, deep_rules  # noqa: F401
