"""WAL/replay coverage (WAL001–WAL003).

The journal (``repro.core.journal``) and the service ledger
(``repro.service.ledger``) are write-ahead logs: one side *appends*
typed records (``Journal.append(wal.COMMIT, target=..., ...)``), the
other side *replays* them after a crash (``resume_run`` in
``core/recovery.py``, prefix verification in ``service/ledger.py``).
The PR 5/6 bugs that reached review — the resume verdict flip, the torn
tail mishandling — were exactly mismatches between the two sides.  This
pass cross-checks them statically:

* **WAL001** — every record kind appended somewhere has a replay
  handler, or an explicit no-replay declaration (``REPLAY_IGNORED`` /
  ``REPLAY_UNIFORM`` frozensets next to the kind constants).  A branch
  deleted from the replay dispatch trips this immediately.
* **WAL002** — fields a replay handler reads from a record are a subset
  of the fields the append sites write for that kind (schema drift: a
  replay-only field is a ``KeyError`` waiting for the next crash).
* **WAL003** — no dead replay handlers: a handled or declared kind that
  nothing appends, or a kind both declared ignored *and* handled, is a
  contradiction in the durability story.

A *kind surface* is a module that defines lowercase string constants
(the kind table) alongside an ``append``-capable class; the journal and
ledger each form one surface, and fixture projects in tests form their
own.  Handlers are only recognised inside replay-scoped functions
(name matching resume/replay/recover/read/load) so that durability
policy checks like ``if kind in SYNC_KINDS`` never masquerade as
replay coverage.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.callgraph import CallSite, FunctionInfo, ProjectGraph
from repro.lint.rules import ImportMap, collect_imports, resolve_dotted

#: Values that look like record kinds (``run_start``, ``commit``, …).
KIND_VALUE_RE = re.compile(r"^[a-z][a-z0-9_]*$")
#: Functions in which a kind comparison counts as a replay handler.
HANDLER_FN_RE = re.compile(r"resume|replay|recover|read|load", re.IGNORECASE)
#: Module-level declaration tables accepted as replay-coverage facts.
IGNORED_DECL = "REPLAY_IGNORED"
UNIFORM_DECL = "REPLAY_UNIFORM"
#: Receiver components marking an append call as durable (shared with
#: the taint pass's journal-append sink heuristic).
DURABLE_RECEIVERS = {"journal", "ledger", "stream", "wal", "_journal", "_ledger"}
#: Fields the append plumbing stamps on every record.
IMPLICIT_FIELDS = frozenset({"kind", "seq", "run"})


@dataclass
class KindSurface:
    """One WAL schema: the module defining the kind constants."""

    module: str
    path: str
    #: constant name -> kind value (``RUN_START`` -> ``run_start``).
    kinds: dict[str, str] = field(default_factory=dict)
    #: kind value -> fields written at append sites (union).
    appended: dict[str, set[str]] = field(default_factory=dict)
    #: kind value -> first append site (path, line) for anchoring.
    append_sites: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: kinds appended somewhere with a ``**splat`` → open schema.
    open_schema: set[str] = field(default_factory=set)
    #: kind value -> handler compare site (path, line).
    handled: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: kind value -> declaring table name (REPLAY_IGNORED / REPLAY_UNIFORM).
    declared: dict[str, str] = field(default_factory=dict)
    #: (path, line) of the declaration tables, for anchoring WAL003.
    decl_site: tuple[str, int] | None = None

    def ref(self, dotted: str) -> str | None:
        """Kind value when ``dotted`` names one of this surface's
        constants (``repro.core.journal.RUN_START`` → ``run_start``)."""
        prefix = self.module + "."
        if dotted.startswith(prefix) and dotted[len(prefix) :] in self.kinds:
            return self.kinds[dotted[len(prefix) :]]
        return None


def discover_surfaces(graph: ProjectGraph) -> list[KindSurface]:
    """Modules defining kind tables next to an append-capable class."""
    append_modules = {
        cls.module for cls in graph.classes.values() if "append" in cls.methods
    }
    surfaces: dict[str, KindSurface] = {}
    for key, value in graph.constants.items():
        module, _, name = key.rpartition(".")
        if module not in append_modules:
            continue
        if not name.isupper() or not KIND_VALUE_RE.match(value):
            continue
        surface = surfaces.setdefault(
            module,
            KindSurface(module=module, path=graph.modules.get(module, module)),
        )
        surface.kinds[name] = value
    return [surfaces[module] for module in sorted(surfaces)]


def _surface_for_ref(
    surfaces: list[KindSurface], dotted: str
) -> tuple[KindSurface, str] | None:
    for surface in surfaces:
        kind = surface.ref(dotted)
        if kind is not None:
            return surface, kind
    return None


# ---------------------------------------------------------------------------
# append side
# ---------------------------------------------------------------------------


def _append_like_functions(graph: ProjectGraph) -> set[str]:
    """``append`` methods plus wrappers forwarding their kind argument.

    A wrapper is a function whose first non-self parameter is passed as
    the first positional argument of an append-like call inside it —
    ``LedgerStream.append`` and the service's ``_ledger`` both qualify,
    so call sites through them still count as append sites.
    """
    append_like = {
        qualname
        for cls in graph.classes.values()
        for name, qualname in cls.methods.items()
        if name == "append"
    }
    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            if info.qualname in append_like:
                continue
            kind_param = _first_param(info)
            if kind_param is None:
                continue
            for call in info.calls:
                if not _is_append_call(call, append_like):
                    continue
                if (
                    call.node.args
                    and isinstance(call.node.args[0], ast.Name)
                    and call.node.args[0].id == kind_param
                ):
                    append_like.add(info.qualname)
                    changed = True
                    break
    return append_like


def _first_param(info: FunctionInfo) -> str | None:
    args = getattr(info.node, "args", None)
    if args is None:
        return None
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names[0] if names else None


def _is_append_call(call: CallSite, append_like: set[str]) -> bool:
    if call.target in append_like:
        return True
    return call.attr == "append" and bool(
        set((call.receiver or "").split(".")) & DURABLE_RECEIVERS
    )


def _kind_of_first_arg(
    call: CallSite,
    info: FunctionInfo,
    graph: ProjectGraph,
    surfaces: list[KindSurface],
) -> tuple[KindSurface, str] | None:
    if not call.node.args:
        return None
    arg = call.node.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        matches = [s for s in surfaces if arg.value in s.kinds.values()]
        if len(matches) == 1:
            return matches[0], arg.value
        # a literal shared by several surfaces ("header") is attributed
        # to the surface of the module doing the appending, if any.
        for candidate in matches:
            if candidate.module == info.module:
                return candidate, arg.value
        return None
    dotted = _resolve_const_ref(arg, info, graph)
    if dotted is None:
        return None
    return _surface_for_ref(surfaces, dotted)


def _resolve_const_ref(
    arg: ast.expr, info: FunctionInfo, graph: ProjectGraph
) -> str | None:
    """Dotted path of a constant reference (``wal.RUN_START``,
    bare ``HEADER`` in its defining module)."""
    index_imports = _module_imports(graph, info.module)
    if index_imports is not None:
        dotted = resolve_dotted(arg, index_imports)
        if dotted is not None:
            return dotted
    if isinstance(arg, ast.Name):
        return f"{info.module}.{arg.id}"
    return None


_IMPORT_CACHE: dict[int, dict[str, ImportMap | None]] = {}


def _module_imports(graph: ProjectGraph, module: str) -> ImportMap | None:
    cache = _IMPORT_CACHE.setdefault(id(graph), {})
    if module not in cache:
        path = graph.modules.get(module)
        source = graph.sources.get(path) if path else None
        cache[module] = (
            collect_imports(ast.parse(source)) if source is not None else None
        )
    return cache[module]


def collect_appends(
    graph: ProjectGraph, surfaces: list[KindSurface]
) -> None:
    append_like = _append_like_functions(graph)
    for info in graph.functions.values():
        for call in info.calls:
            if not _is_append_call(call, append_like):
                continue
            resolved = _kind_of_first_arg(call, info, graph, surfaces)
            if resolved is None:
                continue
            surface, kind = resolved
            fields_written = surface.appended.setdefault(kind, set())
            has_splat = False
            for keyword in call.node.keywords:
                if keyword.arg is None:
                    has_splat = True
                else:
                    fields_written.add(keyword.arg)
            if has_splat:
                surface.open_schema.add(kind)
            surface.append_sites.setdefault(kind, (info.path, call.line))


# ---------------------------------------------------------------------------
# replay side: handlers + field reads
# ---------------------------------------------------------------------------


def _handler_functions(graph: ProjectGraph) -> list[FunctionInfo]:
    return [
        info
        for info in graph.functions.values()
        if HANDLER_FN_RE.search(info.name)
    ]


def collect_handlers(
    graph: ProjectGraph, surfaces: list[KindSurface]
) -> None:
    for info in _handler_functions(graph):
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Compare):
                continue
            for expr in [node.left, *node.comparators]:
                dotted = _compare_ref(expr, info, graph)
                if dotted is None:
                    continue
                resolved = _surface_for_ref(surfaces, dotted)
                if resolved is None:
                    continue
                surface, kind = resolved
                surface.handled.setdefault(kind, (info.path, node.lineno))


def _compare_ref(
    expr: ast.expr, info: FunctionInfo, graph: ProjectGraph
) -> str | None:
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return _resolve_const_ref(expr, info, graph)
    return None


def collect_declarations(
    graph: ProjectGraph, surfaces: list[KindSurface]
) -> None:
    for key, refs in graph.const_sets.items():
        module, _, name = key.rpartition(".")
        if name not in (IGNORED_DECL, UNIFORM_DECL):
            continue
        for ref in refs:
            resolved = _surface_for_ref(surfaces, ref)
            if resolved is None:
                continue
            surface, kind = resolved
            surface.declared[kind] = name
            if surface.decl_site is None:
                surface.decl_site = (
                    graph.modules.get(module, module),
                    _declaration_line(graph, module, name),
                )


def _declaration_line(graph: ProjectGraph, module: str, name: str) -> int:
    path = graph.modules.get(module)
    source = graph.sources.get(path, "") if path else ""
    for lineno, line in enumerate(source.splitlines(), start=1):
        if line.lstrip().startswith(name):
            return lineno
    return 1


# -- record/kind binding for WAL002 -----------------------------------------


@dataclass
class _Binding:
    """A local name statically known to hold a record of one kind."""

    name: str
    surface: KindSurface
    kind: str


class _ReplayReads(ast.NodeVisitor):
    """Field reads of kind-bound record variables in one handler."""

    def __init__(
        self,
        graph: ProjectGraph,
        surfaces: list[KindSurface],
        info: FunctionInfo,
        bindings: dict[str, tuple[KindSurface, str]],
        depth: int = 0,
    ) -> None:
        self.graph = graph
        self.surfaces = surfaces
        self.info = info
        self.bindings = dict(bindings)
        self.depth = depth
        #: list of (surface, kind, field, line)
        self.reads: list[tuple[KindSurface, str, str, int]] = []
        #: list names bound per kind via ``lst.append(record)``.
        self.list_kinds: dict[str, tuple[KindSurface, str]] = {}

    # -- binding discovery ---------------------------------------------

    def run(self) -> list[tuple[KindSurface, str, str, int]]:
        node = self.info.node
        self._seed_header_bindings(node)
        self._walk_statements(getattr(node, "body", []))
        return self.reads

    def _seed_header_bindings(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if not isinstance(child, ast.Assign) or len(child.targets) != 1:
                continue
            target = child.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if _is_first_record_expr(child.value):
                surface = self._module_surface()
                if surface is not None and "header" in surface.kinds.values():
                    self.bindings[target.id] = (surface, "header")

    def _module_surface(self) -> KindSurface | None:
        """The surface this handler's module manipulates: its own, or
        the single surface whose constants the module imports."""
        for surface in self.surfaces:
            if surface.module == self.info.module:
                return surface
        referencing = [
            surface
            for surface in self.surfaces
            if _module_references_surface(self.graph, self.info.module, surface)
        ]
        return referencing[0] if len(referencing) == 1 else None

    def _walk_statements(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            self._visit_statement(statement)

    def _visit_statement(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.If):
            branch = self._kind_branch(statement.test)
            if branch is not None:
                recvar, surface, kind = branch
                self._bind_branch(statement.body, recvar, surface, kind)
                self._walk_statements(statement.orelse)
                # reads on the record var inside the branch body
                saved = self.bindings.get(recvar)
                self.bindings[recvar] = (surface, kind)
                self._walk_statements(statement.body)
                if saved is None:
                    self.bindings.pop(recvar, None)
                else:
                    self.bindings[recvar] = saved
                return
            self._walk_statements(statement.body)
            self._walk_statements(statement.orelse)
            self._scan_expr(statement.test)
            return
        if isinstance(statement, (ast.For, ast.While)):
            if isinstance(statement, ast.For):
                self._bind_loop(statement)
            self._walk_statements(statement.body)
            self._walk_statements(statement.orelse)
            return
        if isinstance(statement, (ast.With,)):
            self._walk_statements(statement.body)
            return
        if isinstance(statement, (ast.Try,)):
            self._walk_statements(statement.body)
            for handler in statement.handlers:
                self._walk_statements(handler.body)
            self._walk_statements(statement.orelse)
            self._walk_statements(statement.finalbody)
            return
        for child in ast.walk(statement):
            if isinstance(child, ast.expr):
                self._scan_expr_node(child)

    def _kind_branch(
        self, test: ast.expr
    ) -> tuple[str, KindSurface, str] | None:
        """``kind == wal.X`` / ``record["kind"] == wal.X`` branch tests."""
        if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
            return None
        if not isinstance(test.ops[0], ast.Eq):
            return None
        left, right = test.left, test.comparators[0]
        dotted = _compare_ref(right, self.info, self.graph)
        if dotted is None:
            left, right = right, left
            dotted = _compare_ref(right, self.info, self.graph)
        if dotted is None:
            return None
        resolved = _surface_for_ref(self.surfaces, dotted)
        if resolved is None:
            return None
        surface, kind = resolved
        recvar = self._record_var_of(left)
        if recvar is None:
            return None
        return recvar, surface, kind

    def _record_var_of(self, expr: ast.expr) -> str | None:
        # `record["kind"] == X`
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and isinstance(expr.slice, ast.Constant)
            and expr.slice.value == "kind"
        ):
            return expr.value.id
        # `kind == X` where `kind = record["kind"]` earlier
        if isinstance(expr, ast.Name):
            return self._kvar_records.get(expr.id)
        return None

    @property
    def _kvar_records(self) -> dict[str, str]:
        """``{kind_var: record_var}`` from ``kind = record["kind"]``."""
        found: dict[str, str] = {}
        for child in ast.walk(self.info.node):
            if (
                isinstance(child, ast.Assign)
                and len(child.targets) == 1
                and isinstance(child.targets[0], ast.Name)
                and isinstance(child.value, ast.Subscript)
                and isinstance(child.value.value, ast.Name)
                and isinstance(child.value.slice, ast.Constant)
                and child.value.slice.value == "kind"
            ):
                found[child.targets[0].id] = child.value.value.id
        return found

    def _bind_branch(
        self,
        body: list[ast.stmt],
        recvar: str,
        surface: KindSurface,
        kind: str,
    ) -> None:
        """Aliases created inside a matched branch: ``snapshot = record``
        binds for the rest of the function; ``commits.append(record)``
        binds the loop variable of a later ``for c in commits:``."""
        for statement in body:
            for child in ast.walk(statement):
                if (
                    isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == recvar
                ):
                    self.bindings[child.targets[0].id] = (surface, kind)
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "append"
                    and isinstance(child.func.value, ast.Name)
                    and child.args
                    and isinstance(child.args[0], ast.Name)
                    and child.args[0].id == recvar
                ):
                    self.list_kinds[child.func.value.id] = (surface, kind)

    def _bind_loop(self, loop: ast.For) -> None:
        if (
            isinstance(loop.iter, ast.Name)
            and isinstance(loop.target, ast.Name)
            and loop.iter.id in self.list_kinds
        ):
            self.bindings[loop.target.id] = self.list_kinds[loop.iter.id]

    # -- read collection -----------------------------------------------

    def _scan_expr(self, expr: ast.expr) -> None:
        for child in ast.walk(expr):
            self._scan_expr_node(child)

    def _scan_expr_node(self, child: ast.AST) -> None:
        if (
            isinstance(child, ast.Subscript)
            and isinstance(child.value, ast.Name)
            and child.value.id in self.bindings
            and isinstance(child.slice, ast.Constant)
            and isinstance(child.slice.value, str)
        ):
            surface, kind = self.bindings[child.value.id]
            self.reads.append(
                (surface, kind, child.slice.value, child.lineno)
            )
        elif (
            isinstance(child, ast.Subscript)
            and _is_first_record_expr(child.value)
            and isinstance(child.slice, ast.Constant)
            and isinstance(child.slice.value, str)
        ):
            surface = self._module_surface()
            if surface is not None and "header" in surface.kinds.values():
                self.reads.append(
                    (surface, "header", child.slice.value, child.lineno)
                )
        elif (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr == "get"
            and isinstance(child.func.value, ast.Name)
            and child.func.value.id in self.bindings
            and child.args
            and isinstance(child.args[0], ast.Constant)
            and isinstance(child.args[0].value, str)
        ):
            surface, kind = self.bindings[child.func.value.id]
            self.reads.append(
                (surface, kind, child.args[0].value, child.lineno)
            )
        elif isinstance(child, ast.Call) and self.depth < 2:
            self._propagate_call(child)

    def _propagate_call(self, call: ast.Call) -> None:
        """One level of ``helper(run_end)``-style propagation: the bound
        record flows into another replay-scoped project function."""
        bound_args = {
            index: self.bindings[arg.id]
            for index, arg in enumerate(call.args)
            if isinstance(arg, ast.Name) and arg.id in self.bindings
        }
        if not bound_args:
            return
        for candidate in self.graph.functions.values():
            if (
                candidate.module != self.info.module
                and not HANDLER_FN_RE.search(candidate.name)
            ):
                continue
            if not _call_matches(call, candidate, self.info, self.graph):
                continue
            params = _param_names(candidate)
            child_bindings = {}
            for index, binding in bound_args.items():
                if index < len(params):
                    child_bindings[params[index]] = binding
            if child_bindings:
                nested = _ReplayReads(
                    self.graph,
                    self.surfaces,
                    candidate,
                    child_bindings,
                    depth=self.depth + 1,
                )
                self.reads.extend(nested.run())
            break


def _param_names(info: FunctionInfo) -> list[str]:
    args = getattr(info.node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in [*args.posonlyargs, *args.args]]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def _call_matches(
    call: ast.Call,
    candidate: FunctionInfo,
    caller: FunctionInfo,
    graph: ProjectGraph,
) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return (
            func.id == candidate.name
            and candidate.module == caller.module
        )
    if isinstance(func, ast.Attribute):
        dotted = _resolve_const_ref(func, caller, graph)
        return dotted == candidate.qualname
    return False


def _is_first_record_expr(expr: ast.expr) -> bool:
    """``records[0]`` / ``lines[0]``-shaped first-record access."""
    return (
        isinstance(expr, ast.Subscript)
        and isinstance(expr.value, ast.Name)
        and isinstance(expr.slice, ast.Constant)
        and expr.slice.value == 0
    )


def _module_references_surface(
    graph: ProjectGraph, module: str, surface: KindSurface
) -> bool:
    imports = _module_imports(graph, module)
    if imports is not None:
        if surface.module in imports.modules.values():
            return True
        for mod, member in imports.members.values():
            if f"{mod}.{member}" == surface.module:
                return True
    path = graph.modules.get(module)
    source = graph.sources.get(path, "") if path else ""
    return surface.module in source


def collect_replay_reads(
    graph: ProjectGraph, surfaces: list[KindSurface]
) -> list[tuple[KindSurface, str, str, int, str]]:
    """All (surface, kind, field, line, path) replay-side reads."""
    reads: list[tuple[KindSurface, str, str, int, str]] = []
    for info in _handler_functions(graph):
        collector = _ReplayReads(graph, surfaces, info, bindings={})
        for surface, kind, fieldname, line in collector.run():
            reads.append((surface, kind, fieldname, line, info.path))
    return reads


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------


def run_walcheck(graph: ProjectGraph) -> list[Diagnostic]:
    surfaces = discover_surfaces(graph)
    if not surfaces:
        return []
    collect_appends(graph, surfaces)
    collect_handlers(graph, surfaces)
    collect_declarations(graph, surfaces)
    reads = collect_replay_reads(graph, surfaces)

    diagnostics: list[Diagnostic] = []
    for surface in surfaces:
        diagnostics.extend(_check_surface(surface))
    diagnostics.extend(_check_reads(surfaces, reads))
    return diagnostics


def _check_surface(surface: KindSurface) -> list[Diagnostic]:
    diagnostics = []
    short = surface.module.rsplit(".", 1)[-1]
    for kind in sorted(surface.appended):
        if kind in surface.handled or kind in surface.declared:
            continue
        path, line = surface.append_sites[kind]
        diagnostics.append(
            Diagnostic(
                rule="WAL001",
                path=path,
                line=line,
                message=(
                    f"record kind {kind!r} ({short} surface) is appended "
                    "but never replayed and not declared in "
                    f"{IGNORED_DECL}/{UNIFORM_DECL} — a crash between this "
                    "append and the action it announces would lose the "
                    "decision silently"
                ),
                symbol=surface.module,
            )
        )
    for kind in sorted(surface.handled):
        handler_path, handler_line = surface.handled[kind]
        if kind not in surface.appended:
            diagnostics.append(
                Diagnostic(
                    rule="WAL003",
                    path=handler_path,
                    line=handler_line,
                    message=(
                        f"replay handler for kind {kind!r} ({short} surface) "
                        "is dead — nothing appends that kind"
                    ),
                    symbol=surface.module,
                )
            )
        if surface.declared.get(kind) == IGNORED_DECL:
            diagnostics.append(
                Diagnostic(
                    rule="WAL003",
                    path=handler_path,
                    line=handler_line,
                    message=(
                        f"kind {kind!r} ({short} surface) is declared in "
                        f"{IGNORED_DECL} yet has a replay handler — the "
                        "declaration and the dispatch contradict each other"
                    ),
                    symbol=surface.module,
                )
            )
    for kind in sorted(surface.declared):
        if kind not in surface.appended and kind not in surface.handled:
            path, line = surface.decl_site or (surface.path, 1)
            diagnostics.append(
                Diagnostic(
                    rule="WAL003",
                    path=path,
                    line=line,
                    message=(
                        f"declared kind {kind!r} ({short} surface) is never "
                        "appended — stale entry in "
                        f"{surface.declared[kind]}"
                    ),
                    symbol=surface.module,
                )
            )
    return diagnostics


def _check_reads(
    surfaces: list[KindSurface],
    reads: list[tuple[KindSurface, str, str, int, str]],
) -> list[Diagnostic]:
    diagnostics = []
    seen: set[tuple[str, str, str]] = set()
    for surface, kind, fieldname, line, path in reads:
        if fieldname in IMPLICIT_FIELDS:
            continue
        if kind not in surface.appended:
            continue  # WAL001/WAL003 already cover unappended kinds
        if kind in surface.open_schema:
            continue  # splat append → field set statically unknown
        if fieldname in surface.appended[kind]:
            continue
        key = (surface.module, kind, fieldname)
        if key in seen:
            continue
        seen.add(key)
        short = surface.module.rsplit(".", 1)[-1]
        diagnostics.append(
            Diagnostic(
                rule="WAL002",
                path=path,
                line=line,
                message=(
                    f"replay reads field {fieldname!r} of kind {kind!r} "
                    f"({short} surface) but no append site writes it — "
                    "schema drift; the next crash-resume raises KeyError"
                ),
                symbol=surface.module,
            )
        )
    return diagnostics
