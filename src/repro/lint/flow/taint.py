"""Interprocedural nondeterminism taint (FLOW001–FLOW004).

A *source* is an expression whose value differs between two replicas of
the same logical execution: the host clock, unrouted entropy, ambient
process identity (environment, pids, hostnames, CPython ``id()``/default
``hash()``), or order/platform-sensitive float accumulation.  A *sink*
is a call whose arguments must be byte-identical across replicas for
ClusterBFT's assurance argument to hold: digest computation, journal and
ledger appends, audit records, trace emission, and scheduler decisions.

The pass is coarse by design: a sink call site is flagged when the
function containing it can *reach* a source — transitively, through the
project call graph — under the same rule.  That over-approximates real
dataflow (the tainted value may never flow into the sink argument), but
every finding comes with the full source→sink call chain, so review is
cheap, and the waiver mechanism (``# lint: allow FLOW001 <reason>``)
records the argument for each sanctioned site.  Sources on a line that
already carries *any* ``# lint: allow`` waiver are sanctioned at the
source: the telemetry wall-clock profile path and the seeded chaos RNG
do not re-taint every caller that reaches them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.det_rules import (
    DIGEST_NAME_RE,
    RANDOM_CONSTRUCTORS,
    RANDOM_MODULE_STATE,
    WALL_CLOCK,
    _has_float_arithmetic,
)
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.callgraph import CallSite, FunctionInfo, ProjectGraph
from repro.lint.waivers import collect_waivers

# ---------------------------------------------------------------------------
# source tables
# ---------------------------------------------------------------------------

#: FLOW002: entropy that is not routed through the RngRegistry.
ENTROPY_SOURCES = (
    RANDOM_CONSTRUCTORS
    | RANDOM_MODULE_STATE
    | {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbits",
        "secrets.choice",
    }
)

#: FLOW003: ambient process identity — stable within one process, but
#: different between the replicas that must agree.
IDENTITY_SOURCES = {
    "builtins.id",
    "builtins.hash",
    "os.getenv",
    "os.getpid",
    "os.getppid",
    "os.uname",
    "socket.gethostname",
    "socket.getfqdn",
    "platform.node",
}

#: Dotted prefixes matched against attribute loads (``os.environ[...]``
#: and ``os.environ.get(...)`` both resolve under ``os.environ``).
IDENTITY_PREFIXES = ("os.environ",)

#: Modules whose *own* source sites are sanctioned per rule: the one
#: place the behaviour is supposed to live (mirrors layer-1 exemptions).
SOURCE_EXEMPT_SUFFIXES = {
    "FLOW002": ("repro/common/rng.py",),
}


@dataclass(frozen=True)
class SourceSite:
    """One nondeterminism source inside a function body."""

    rule: str
    function: str  # qualname
    dotted: str  # what was read (``time.monotonic``, ``os.environ``)
    line: int


@dataclass(frozen=True)
class SinkSite:
    """One assured-sink call inside a function body."""

    category: str  # digest | journal-append | audit-record | trace-emit | scheduler
    function: str  # qualname
    detail: str  # human-readable callee description
    line: int
    col: int


#: Receiver-chain components that mark an append target as durable.
_DURABLE_RECEIVERS = {"journal", "ledger", "stream", "wal", "_journal", "_ledger"}
#: Receiver components marking the audit log.
_AUDIT_RECEIVERS = {"audit", "_audit", "audit_log"}
#: Receiver components marking a tracer.
_TRACER_RECEIVERS = {"tracer", "_tracer"}
_TRACER_METHODS = {"event", "begin", "emit", "gauge"}
#: Scheduler placement/quarantine decisions that must replay identically.
_SCHEDULER_RECEIVERS = {"scheduler", "_scheduler"}
_SCHEDULER_METHODS = {
    "assign",
    "quarantine",
    "release",
    "register_owner",
    "set_slot_budget",
}


def _receiver_components(receiver: str | None) -> set[str]:
    return set(receiver.split(".")) if receiver else set()


def _class_of(graph: ProjectGraph, qualname: str | None) -> str:
    if qualname is None:
        return ""
    info = graph.functions.get(qualname)
    if info is None or info.class_qualname is None:
        return ""
    return info.class_qualname.rsplit(".", 1)[-1]


def classify_sink(graph: ProjectGraph, site: CallSite) -> tuple[str, str] | None:
    """``(category, detail)`` when ``site`` is an assured sink."""
    attr = site.attr or ""
    components = _receiver_components(site.receiver)
    target_class = _class_of(graph, site.target)
    target_name = (site.target or "").rsplit(".", 1)[-1]

    if site.dotted and site.dotted.startswith("hashlib."):
        return ("digest", site.dotted)
    if DIGEST_NAME_RE.search(attr or target_name or (site.dotted or "")):
        return ("digest", site.dotted or site.target or attr)
    if attr == "append" and (
        components & _DURABLE_RECEIVERS
        or "Journal" in target_class
        or "Ledger" in target_class
        or "Stream" in target_class
    ):
        return ("journal-append", f"{site.receiver}.append")
    if target_name == "_ledger" and "Service" in target_class:
        return ("journal-append", f"{site.receiver}._ledger" if site.receiver else "_ledger")
    if attr == "record" and components & _AUDIT_RECEIVERS:
        return ("audit-record", f"{site.receiver}.record")
    if attr in _TRACER_METHODS and components & _TRACER_RECEIVERS:
        return ("trace-emit", f"{site.receiver}.{attr}")
    if attr in _SCHEDULER_METHODS and (
        components & _SCHEDULER_RECEIVERS or "Scheduler" in target_class
    ):
        return ("scheduler", f"{site.receiver}.{attr}")
    return None


# ---------------------------------------------------------------------------
# source collection
# ---------------------------------------------------------------------------


def _sanctioned_lines(graph: ProjectGraph) -> dict[str, set[int]]:
    """Per display path, lines already covered by a *layer-1* waiver.

    A ``# lint: allow DET00x`` on the source line means a reviewer has
    already argued for that site (the telemetry wall-clock profile
    path, the seeded chaos RNG); re-reporting every caller that reaches
    it through the graph would only bury real findings.  Waivers naming
    FLOW/WAL/AUD rules do NOT sanction the source — they waive the deep
    finding itself, through the normal waiver machinery, so they stay
    accounted for (used/unused) like any other waiver.
    """
    from repro.lint.rules import is_deep_rule

    sanctioned: dict[str, set[int]] = {}
    for path, source in graph.sources.items():
        waivers, _ = collect_waivers(source)
        lines = {
            waiver.target_line
            for waiver in waivers
            if any(not is_deep_rule(rule) for rule in waiver.rules)
        }
        if lines:
            sanctioned[path] = lines
    return sanctioned


def _source_rule(dotted: str) -> str | None:
    if dotted in WALL_CLOCK:
        return "FLOW001"
    if dotted in ENTROPY_SOURCES:
        return "FLOW002"
    if dotted in IDENTITY_SOURCES:
        return "FLOW003"
    for prefix in IDENTITY_PREFIXES:
        if dotted == prefix or dotted.startswith(prefix + "."):
            return "FLOW003"
    return None


def collect_sources(graph: ProjectGraph) -> dict[str, list[SourceSite]]:
    """``{qualname: [SourceSite, ...]}`` over the whole project."""
    sanctioned = _sanctioned_lines(graph)
    sources: dict[str, list[SourceSite]] = {}
    for info in graph.functions.values():
        sanctioned_here = sanctioned.get(info.path, set())
        sites: list[SourceSite] = []
        for call in info.calls:
            if call.dotted is None or call.line in sanctioned_here:
                continue
            rule = _source_rule(call.dotted)
            if rule is None:
                continue
            if _exempt_source(rule, info.path):
                continue
            sites.append(SourceSite(rule, info.qualname, call.dotted, call.line))
        for dotted, line in info.ext_uses:
            if line in sanctioned_here:
                continue
            rule = _source_rule(dotted)
            if rule is not None and not _exempt_source(rule, info.path):
                sites.append(SourceSite(rule, info.qualname, dotted, line))
        if sites:
            sources[info.qualname] = sites
    return sources


def _exempt_source(rule: str, path: str) -> bool:
    suffixes = SOURCE_EXEMPT_SUFFIXES.get(rule, ())
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


def collect_sinks(graph: ProjectGraph) -> dict[str, list[SinkSite]]:
    sinks: dict[str, list[SinkSite]] = {}
    for info in graph.functions.values():
        sites = []
        for call in info.calls:
            classified = classify_sink(graph, call)
            if classified is not None:
                category, detail = classified
                sites.append(
                    SinkSite(category, info.qualname, detail, call.line, call.col)
                )
        if sites:
            sinks[info.qualname] = sites
    return sinks


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

_RULE_TITLES = {
    "FLOW001": "wall-clock value can reach an assured sink",
    "FLOW002": "unrouted entropy can reach an assured sink",
    "FLOW003": "process identity (env/id/hash/pid) can reach an assured sink",
    "FLOW004": "float accumulation inside a digest-reachable function",
}


def _chain_text(chain: list[str]) -> str:
    return " -> ".join(part.split(".", 2)[-1] for part in chain)


def run_taint(graph: ProjectGraph) -> list[Diagnostic]:
    """All FLOW findings over the project graph."""
    sources = collect_sources(graph)
    sinks = collect_sinks(graph)
    diagnostics: list[Diagnostic] = []

    for sink_fn, sink_sites in sorted(sinks.items()):
        info = graph.functions[sink_fn]
        tree = graph.reachable([sink_fn])
        tainted: dict[str, SourceSite] = {}  # rule -> first source found
        for reached in tree:
            for site in sources.get(reached, []):
                tainted.setdefault(site.rule, site)
        if not tainted:
            continue
        reported: set[tuple[str, int]] = set()
        for sink in sink_sites:
            for rule, source in sorted(tainted.items()):
                key = (rule, sink.line)
                if key in reported:
                    continue
                reported.add(key)
                chain = graph.chain(tree, source.function)
                chain_display = _chain_text(chain)
                source_path = graph.functions[source.function].path
                diagnostics.append(
                    Diagnostic(
                        rule=rule,
                        path=info.path,
                        line=sink.line,
                        column=sink.col,
                        message=(
                            f"{_RULE_TITLES[rule]}: {sink.category} sink "
                            f"{sink.detail!r} is reachable from {source.dotted} "
                            f"({source_path}:{source.line}) via "
                            f"{chain_display}"
                        ),
                        symbol=sink_fn,
                        chain=tuple(chain),
                    )
                )
    diagnostics.extend(_run_float_taint(graph, sinks))
    return diagnostics


def _run_float_taint(
    graph: ProjectGraph, sinks: dict[str, list[SinkSite]]
) -> list[Diagnostic]:
    """FLOW004: float accumulation anywhere a digest sink can reach.

    Layer 1's DET004 only sees functions whose *name* looks digest-like;
    here the call graph tells us which functions actually feed a digest,
    whatever they are called.
    """
    digest_fns = [
        fn
        for fn, sites in sinks.items()
        if any(site.category == "digest" for site in sites)
    ]
    diagnostics = []
    seen: set[tuple[str, int]] = set()
    for root in sorted(digest_fns):
        tree = graph.reachable([root])
        for reached in tree:
            info = graph.functions[reached]
            for line, col, description in _float_accumulations(info):
                key = (info.path, line)
                if key in seen:
                    continue
                seen.add(key)
                chain = graph.chain(tree, reached)
                diagnostics.append(
                    Diagnostic(
                        rule="FLOW004",
                        path=info.path,
                        line=line,
                        column=col,
                        message=(
                            f"{_RULE_TITLES['FLOW004']}: {description} in "
                            f"{info.name!r}, reachable from digest function "
                            f"{root.rsplit('.', 1)[-1]!r} via "
                            f"{_chain_text(chain)}"
                        ),
                        symbol=reached,
                        chain=tuple(chain),
                    )
                )
    return diagnostics


def _float_accumulations(info: FunctionInfo) -> list[tuple[int, int, str]]:
    found: list[tuple[int, int, str]] = []
    for node in ast.walk(info.node):
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and _has_float_arithmetic(node.value)
        ):
            found.append(
                (node.lineno, node.col_offset, "float augmented accumulation")
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and any(_has_float_arithmetic(arg) for arg in node.args)
        ):
            found.append(
                (node.lineno, node.col_offset, "sum() over float expressions")
            )
    return found
