"""Findings-baseline ratchet for ``repro lint --deep``.

Whole-program findings accumulate history: some are real bugs (fixed
immediately), some are accepted debts (waived inline), and the rest are
frozen in a committed baseline so CI can gate on *new* findings without
demanding a green-field tree first.  The gate ratchets both ways:

* a finding **not** in the baseline fails the build (exit 1) — new debt
  needs a fix or an argued waiver, never a silent baseline bump;
* a baseline entry with no matching finding **also** fails the build —
  the debt was paid, so the baseline must shrink (re-run with
  ``--update-baseline``); a stale entry would let an identical new
  finding hide under the old one's fingerprint.

Fingerprints deliberately exclude line numbers: moving code must not
churn the baseline.  A finding is identified by its rule, file, the
function it anchors to, and the far end of its call chain, plus an
occurrence index for genuine duplicates.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

SCHEMA_VERSION = "repro.lint-baseline/v1"
DEFAULT_PATH = "LINT_BASELINE.json"


class BaselineError(Exception):
    """Unreadable or schema-mismatched baseline file."""


def fingerprint(diagnostic: Diagnostic) -> str:
    chain_end = diagnostic.chain[-1] if diagnostic.chain else ""
    return "|".join(
        [diagnostic.rule, diagnostic.path, diagnostic.symbol, chain_end]
    )


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset of the committed baseline (empty if the
    file does not exist — a fresh tree has no debt)."""
    file_path = Path(path)
    if not file_path.exists():
        return Counter()
    try:
        payload = json.loads(file_path.read_text())
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {file_path}: {exc}")
    if payload.get("schema") != SCHEMA_VERSION:
        raise BaselineError(
            f"baseline {file_path} has schema {payload.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    return Counter(payload.get("entries", []))


def write_baseline(path: str | Path, findings: list[Diagnostic]) -> None:
    entries = sorted(fingerprint(d) for d in findings)
    payload = {"schema": SCHEMA_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: list[Diagnostic], baseline: Counter
) -> tuple[list[Diagnostic], int, list[str]]:
    """Split findings against the baseline.

    Returns ``(new_findings, matched_count, stale_entries)``: findings
    whose fingerprint is not covered by the baseline (the excess beyond
    the baselined count of that fingerprint counts as new), how many
    findings the baseline absorbed, and baseline entries no finding
    matched (the ratchet: these must be removed).
    """
    remaining = Counter(baseline)
    new_findings: list[Diagnostic] = []
    matched = 0
    for diagnostic in findings:
        key = fingerprint(diagnostic)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new_findings.append(diagnostic)
    stale = sorted(
        key for key, count in remaining.items() for _ in range(count)
    )
    return new_findings, matched, stale
