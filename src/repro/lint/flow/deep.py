"""Layer-3 orchestration: build the graph, run the passes, waive.

:func:`deep_lint` is the engine behind ``repro lint --deep``: it builds
one :class:`~repro.lint.flow.callgraph.ProjectGraph` over all the files
on the command line, runs the interprocedural passes (taint, WAL
coverage, audit attribution), then applies the same inline-waiver
machinery layer 1 uses — restricted to the deep rule ids, so one
``# lint: allow FLOW001 <reason>`` works identically in both worlds and
an unused deep waiver is still reported (WAIVE002).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import iter_python_files
from repro.lint.flow.audit_rules import run_audit_check
from repro.lint.flow.callgraph import ProjectGraph, build_project
from repro.lint.flow.taint import run_taint
from repro.lint.flow.walcheck import run_walcheck
from repro.lint.waivers import apply_waivers, collect_waivers


@dataclass(frozen=True)
class DeepRuleInfo:
    """Catalogue entry for ``--list-rules`` / ``--select``."""

    rule_id: str
    title: str


DEEP_RULES = [
    DeepRuleInfo("FLOW001", "wall-clock value can reach an assured sink"),
    DeepRuleInfo("FLOW002", "unrouted entropy can reach an assured sink"),
    DeepRuleInfo(
        "FLOW003", "process identity (env/id/hash/pid) can reach an assured sink"
    ),
    DeepRuleInfo(
        "FLOW004", "float accumulation inside a digest-reachable function"
    ),
    DeepRuleInfo("WAL001", "appended record kind has no replay handler"),
    DeepRuleInfo("WAL002", "replay reads a field no append site writes"),
    DeepRuleInfo("WAL003", "dead or contradictory replay handler/declaration"),
    DeepRuleInfo(
        "AUD001", "shared-state mutation without tenant audit attribution"
    ),
]

DEEP_RULE_IDS = tuple(info.rule_id for info in DEEP_RULES)


def deep_rules() -> list[DeepRuleInfo]:
    return list(DEEP_RULES)


def deep_rule_ids(selected: list[str] | None = None) -> list[str]:
    """Validate a ``--select`` list against the deep catalogue."""
    if selected is None:
        return list(DEEP_RULE_IDS)
    unknown = [rule for rule in selected if rule not in DEEP_RULE_IDS]
    if unknown:
        raise ValueError(
            f"unknown deep rule id(s) {', '.join(unknown)}; "
            f"known: {', '.join(DEEP_RULE_IDS)}"
        )
    return selected


def build_graph(paths: list[str]) -> ProjectGraph:
    files = iter_python_files(paths)
    return build_project([Path(f) for f in files])


def deep_lint(
    paths: list[str],
    select: list[str] | None = None,
    graph: ProjectGraph | None = None,
) -> LintReport:
    """Run the whole-program passes over ``paths``."""
    selected = set(deep_rule_ids(select))
    if graph is None:
        graph = build_graph(paths)

    diagnostics: list[Diagnostic] = []
    diagnostics.extend(run_taint(graph))
    diagnostics.extend(run_walcheck(graph))
    diagnostics.extend(run_audit_check(graph))
    diagnostics = [d for d in diagnostics if d.rule in selected]

    report = LintReport(files_checked=len(graph.sources))
    by_path: dict[str, list[Diagnostic]] = {}
    for diagnostic in diagnostics:
        by_path.setdefault(diagnostic.path, []).append(diagnostic)
    # Waivers are per-file; sweep every file so an unused deep waiver in
    # a findings-free file is still reported (WAIVE002).  Malformed
    # waiver comments (WAIVE003) are layer 1's to report — emitting them
    # here too would double them up under --deep.
    for path, source in sorted(graph.sources.items()):
        waivers, _ = collect_waivers(source)
        relevant = [
            waiver
            for waiver in waivers
            if set(waiver.rules) & set(DEEP_RULE_IDS)
        ]
        file_diagnostics = by_path.pop(path, [])
        if not relevant and not file_diagnostics:
            continue
        report.extend(
            apply_waivers(file_diagnostics, relevant, [], path)
        )
    # Findings in files outside the graph's source map (shouldn't
    # happen, but never drop a finding on the floor).
    for leftovers in by_path.values():
        report.extend(leftovers)
    return report
