"""Rule framework for the determinism linter (Layer 1).

A :class:`Rule` inspects one parsed module and yields diagnostics.
Rules register themselves with :func:`register`; the engine runs every
registered rule (or a selected subset) over each file.  Shared helpers
resolve imported names to dotted paths (``_time.monotonic`` →
``time.monotonic``) so rules match semantics, not spellings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.diagnostics import Diagnostic


@dataclass(frozen=True)
class ModuleSource:
    """One Python module under analysis."""

    path: str  # display path (as given on the command line)
    source: str
    tree: ast.Module

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleSource":
        return cls(path=path, source=source, tree=ast.parse(source, filename=path))


class Rule:
    """Base class: subclass, set ``rule_id``/``title``, implement check()."""

    rule_id: str = ""
    title: str = ""
    #: Posix-style path suffixes this rule never applies to (the
    #: sanctioned implementation site of the checked behaviour).
    exempt_suffixes: tuple[str, ...] = ()

    def exempt(self, module: ModuleSource) -> bool:
        path = module.path.replace("\\", "/")
        return any(path.endswith(suffix) for suffix in self.exempt_suffixes)

    def check(self, module: ModuleSource) -> list[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleSource, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            path=module.path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
            message=message,
        )


#: Rule-id prefixes owned by the Layer-3 whole-program passes
#: (:mod:`repro.lint.flow`).  Layer 1 leaves their waivers alone — a
#: waiver naming only FLOW/WAL/AUD rules is "used"/"unused" from the
#: deep run's point of view.
DEEP_RULE_PREFIXES = ("FLOW", "WAL", "AUD")


def is_deep_rule(rule_id: str) -> bool:
    return rule_id.startswith(DEEP_RULE_PREFIXES)


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instances of every registered rule, ordered by id."""
    # Importing the rule modules populates the registry.
    import repro.lint.det_rules  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rules_by_id(rule_ids: list[str]) -> list[Rule]:
    rules = {rule.rule_id: rule for rule in all_rules()}
    unknown = [rule_id for rule_id in rule_ids if rule_id not in rules]
    if unknown:
        known = ", ".join(sorted(rules))
        raise ValueError(f"unknown rule id(s) {', '.join(unknown)}; known: {known}")
    return [rules[rule_id] for rule_id in rule_ids]


# ----------------------------------------------------------------------
# import resolution
# ----------------------------------------------------------------------


@dataclass
class ImportMap:
    """Maps local names to the modules/members they import."""

    #: local alias -> module dotted path (``import time as _time``).
    modules: dict[str, str]
    #: local alias -> (module, member) (``from random import Random``).
    members: dict[str, tuple[str, str]]


def collect_imports(tree: ast.Module) -> ImportMap:
    modules: dict[str, str] = {}
    members: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `c` to a.b.
                modules[local] = item.name if item.asname else local
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports cannot name stdlib entropy
            for item in node.names:
                local = item.asname or item.name
                members[local] = (node.module, item.name)
    return ImportMap(modules=modules, members=members)


def resolve_dotted(node: ast.expr, imports: ImportMap) -> str | None:
    """Resolve an expression to the dotted path it references, if any.

    ``Random`` (from ``from random import Random``) → ``random.Random``;
    ``_time.monotonic`` (from ``import time as _time``) →
    ``time.monotonic``; chains extend naturally so ``datetime.datetime.now``
    resolves through ``import datetime``.
    """
    if isinstance(node, ast.Name):
        if node.id in imports.members:
            module, member = imports.members[node.id]
            return f"{module}.{member}"
        if node.id in imports.modules:
            return imports.modules[node.id]
        return None
    if isinstance(node, ast.Attribute):
        base = resolve_dotted(node.value, imports)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None
