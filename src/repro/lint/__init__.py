"""Static analysis for the reproduction: `repro lint`.

Two layers keep the repo's load-bearing determinism invariant checkable
*before* execution:

* **Layer 1 — determinism linter** (:mod:`repro.lint.det_rules`): an
  AST rule engine over Python sources that flags entropy sources which
  bypass :class:`~repro.common.rng.RngRegistry` (DET001), wall-clock
  reads outside the telemetry wall-clock path (DET002), order-sensitive
  consumption of unordered sets (DET003) and floating-point accumulation
  in digest paths (DET004).  Legitimate uses are waived inline with
  ``# lint: allow DET002 <reason>`` so every exception stays auditable.

* **Layer 2 — static plan checker** (:mod:`repro.lint.plan_rules`): a
  pre-execution validation pass over logical dataflow plans — schema and
  arity inference across operators, unused-alias detection, acyclicity,
  verification-point coverage of every sink and replication-degree
  invariants — that turns runtime interpreter crashes into precise
  compile-time diagnostics with operator source locations.
"""

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.engine import lint_paths, lint_source
from repro.lint.plan_rules import (
    PlanCheckError,
    check_config,
    check_plan,
    check_prepared,
)
from repro.lint.rules import Rule, all_rules, rules_by_id
from repro.lint.waivers import Waiver, collect_waivers

__all__ = [
    "Diagnostic",
    "LintReport",
    "PlanCheckError",
    "Rule",
    "Waiver",
    "all_rules",
    "check_config",
    "check_plan",
    "check_prepared",
    "collect_waivers",
    "lint_paths",
    "lint_source",
    "rules_by_id",
]
