"""Diagnostic records and report rendering for the lint subsystem.

A :class:`Diagnostic` pins one finding to a rule id and a source
location; a :class:`LintReport` aggregates them over a run, separating
*active* findings (which fail the build) from *waived* ones (explicitly
allowed inline, kept visible for auditing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violation at a source location."""

    rule: str  # e.g. "DET001" or "PLAN003"
    path: str  # file (or script) the finding is in
    line: int  # 1-based; 0 when no location applies
    message: str
    column: int = 0
    severity: str = SEVERITY_ERROR
    waived: bool = False
    waive_reason: str = ""
    #: Qualname of the function the finding anchors to (layer 3).
    symbol: str = ""
    #: Source→sink call chain (qualnames) for interprocedural findings.
    chain: tuple[str, ...] = ()

    def format(self) -> str:
        location = f"{self.path}:{self.line}:{self.column}"
        text = f"{location}: {self.rule} {self.message}"
        if self.waived:
            reason = self.waive_reason or "no reason given"
            text += f" [waived: {reason}]"
        return text

    def waive(self, reason: str) -> "Diagnostic":
        return replace(self, waived=True, waive_reason=reason)

    def to_dict(self) -> dict:
        payload = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": self.severity,
            "message": self.message,
            "waived": self.waived,
            "waive_reason": self.waive_reason,
        }
        if self.symbol:
            payload["symbol"] = self.symbol
        if self.chain:
            payload["chain"] = list(self.chain)
        return payload


@dataclass
class LintReport:
    """All diagnostics of one lint run, plus file accounting."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0

    @property
    def findings(self) -> list[Diagnostic]:
        """Active (non-waived) diagnostics — these fail the build."""
        return [d for d in self.diagnostics if not d.waived]

    @property
    def waived(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.waived]

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def extend(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics, key=lambda d: (d.path, d.line, d.column, d.rule)
        )

    def render(self, show_waived: bool = False) -> str:
        lines = []
        for diagnostic in self.sorted_diagnostics():
            if diagnostic.waived and not show_waived:
                continue
            lines.append(diagnostic.format())
        findings = self.findings
        summary = (
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
            f" ({len(self.waived)} waived)"
            f" across {self.files_checked} file"
            f"{'s' if self.files_checked != 1 else ''}"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [d.to_dict() for d in self.sorted_diagnostics()],
            "ok": self.ok,
        }
