"""Lint engine: walk files, run rules, apply waivers, build the report.

``lint_paths`` is the programmatic equivalent of ``repro lint PATH…``:
directories are walked for ``*.py`` files (deterministically sorted,
``__pycache__`` skipped), each file is parsed once, every selected rule
runs over the AST, and inline waivers are applied last so the report
distinguishes *clean*, *waived* and *failing* code.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.rules import ModuleSource, Rule, all_rules, is_deep_rule
from repro.lint.waivers import apply_waivers, collect_waivers


def iter_python_files(paths: list[str]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            out.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return out


def lint_source(
    path: str, source: str, rules: list[Rule] | None = None
) -> list[Diagnostic]:
    """Lint one module's source text; returns all diagnostics (incl. waived)."""
    rules = rules if rules is not None else all_rules()
    try:
        module = ModuleSource.parse(path, source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                rule="LINT999",
                path=path,
                line=exc.lineno or 0,
                column=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    diagnostics: list[Diagnostic] = []
    for rule in rules:
        if rule.exempt(module):
            continue
        diagnostics.extend(rule.check(module))
    waivers, malformed = collect_waivers(source)
    # Waivers aimed solely at the whole-program rules belong to the
    # --deep run; judging them "unused" here would be a false WAIVE002.
    own = [
        waiver
        for waiver in waivers
        if any(not is_deep_rule(rule) for rule in waiver.rules)
    ]
    return apply_waivers(diagnostics, own, malformed, path)


def lint_paths(
    paths: list[str], rules: list[Rule] | None = None
) -> LintReport:
    """Lint every Python file under ``paths``; returns the full report."""
    report = LintReport()
    for file_path in iter_python_files(paths):
        try:
            source = file_path.read_text()
        except OSError as exc:
            report.diagnostics.append(
                Diagnostic(
                    rule="LINT998",
                    path=str(file_path),
                    line=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        display = str(file_path).replace(os.sep, "/")
        report.extend(lint_source(display, source, rules))
        report.files_checked += 1
    return report
