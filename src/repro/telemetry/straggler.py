"""Straggler profile: trace-feedback for rerun scheduling.

The trace-feedback half of the checkpoint tier (DESIGN.md §15): a
prior run's trace already knows which nodes ran slow and which jobs sat
on the critical path.  :func:`build_profile` distills that into a
:class:`StragglerProfile` the :class:`~repro.mapreduce.scheduler.
ClusterBFTScheduler` consumes — on a rerun, nodes flagged as stragglers
are kept off the low replica slots that tend to carry the critical
path, so one slow machine stops re-lengthening every escalation
attempt.  Surfaced as ``repro run --schedule-from-trace prior.jsonl``.

The profile is a pure function of the trace records: same trace in,
same profile out — rerun scheduling stays deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.analysis import summarize
from repro.telemetry.export import read_jsonl

#: A node is a straggler when its mean task time exceeds the run-wide
#: mean by this factor (and it ran enough tasks to judge).
DEFAULT_THRESHOLD = 1.5
#: Minimum completed tasks before a node's mean is trusted — one slow
#: task is noise, not a profile.
DEFAULT_MIN_TASKS = 2


@dataclass(frozen=True)
class StragglerProfile:
    """Per-node timing distilled from one run's trace."""

    #: Mean task seconds per node (nodes with at least one task).
    node_mean_seconds: dict[str, float] = field(default_factory=dict)
    #: Run-wide mean task seconds (0.0 for an empty trace).
    overall_mean_seconds: float = 0.0
    #: Nodes whose mean exceeded the threshold — slowest first, then
    #: lexicographic (deterministic order for the scheduler).
    stragglers: tuple[str, ...] = ()
    #: Nodes that executed a critical-path job in any attempt.
    critical_path_nodes: frozenset[str] = frozenset()

    def is_straggler(self, node_id: str) -> bool:
        return node_id in self._straggler_set

    @property
    def _straggler_set(self) -> frozenset[str]:
        return frozenset(self.stragglers)

    def render(self) -> str:
        lines = [
            f"overall mean task time: {self.overall_mean_seconds:.3f}s",
            f"stragglers ({len(self.stragglers)}):",
        ]
        for node in self.stragglers:
            mean = self.node_mean_seconds.get(node, 0.0)
            on_cp = " [critical path]" if node in self.critical_path_nodes else ""
            lines.append(f"  {node:<12} {mean:8.3f}s mean{on_cp}")
        if not self.stragglers:
            lines.append("  (none)")
        return "\n".join(lines)


def build_profile(
    records: list[dict],
    threshold: float = DEFAULT_THRESHOLD,
    min_tasks: int = DEFAULT_MIN_TASKS,
) -> StragglerProfile:
    """Distill trace records into a :class:`StragglerProfile`."""
    summary = summarize(records)
    if summary.task_count == 0:
        return StragglerProfile()
    overall_mean = summary.task_seconds / summary.task_count
    means = {
        node: summary.node_seconds[node] / count
        for node, count in summary.node_tasks.items()
        if count > 0
    }
    stragglers = sorted(
        (
            node
            for node, mean in means.items()
            if summary.node_tasks.get(node, 0) >= min_tasks
            and overall_mean > 0
            and mean > threshold * overall_mean
        ),
        key=lambda node: (-means[node], node),
    )

    # Critical-path membership: the nodes whose tasks executed a job on
    # any attempt's critical path.
    critical_job_ids: set[str] = set()
    for attempt in summary.attempts:
        if attempt.critical_path is not None:
            critical_job_ids.update(attempt.critical_path.job_ids)
    critical_nodes: set[str] = set()
    if critical_job_ids:
        for record in records:
            if record.get("type") != "span" or record.get("name") != "task":
                continue
            attrs = record.get("attrs") or {}
            if attrs.get("job_id") in critical_job_ids:
                node = attrs.get("node")
                if node is not None:
                    critical_nodes.add(node)

    return StragglerProfile(
        node_mean_seconds=means,
        overall_mean_seconds=overall_mean,
        stragglers=tuple(stragglers),
        critical_path_nodes=frozenset(critical_nodes),
    )


def load_profile(
    path: str,
    threshold: float = DEFAULT_THRESHOLD,
    min_tasks: int = DEFAULT_MIN_TASKS,
) -> StragglerProfile:
    """Build a profile straight from a trace JSONL file."""
    return build_profile(read_jsonl(path), threshold=threshold, min_tasks=min_tasks)
