"""Metrics registry: counters, gauges, fixed-bucket histograms.

Deliberately Prometheus-shaped but deterministic: histogram bucket
boundaries are fixed at construction (never adaptive), snapshots are
sorted by metric name and serialized label set, and nothing reads the
wall clock — so the snapshot of a seeded simulation run is byte-stable.

Labels are passed as keyword arguments and frozen into the metric key::

    registry.counter("tasks_completed", kind="map", node="node_0003").inc()

The registry is cheap enough to leave always-on, but every
instrumentation site still routes through a :class:`Telemetry` facade
whose disabled form short-circuits before building label dicts.
"""

from __future__ import annotations

import bisect
from typing import Callable, Iterable

#: Default duration buckets (seconds, simulated) — spans three orders of
#: magnitude around typical task/verification costs in the cost model.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down.

    When the owning registry has a sampler bound (see
    :meth:`MetricsRegistry.bind_sampler`), every mutation additionally
    records a timestamped sample — the time-series behind the Fig. 12/13
    suspicion plots.  ``_emit`` is ``None`` otherwise, so unbound gauges
    stay a plain attribute store.
    """

    __slots__ = ("value", "_emit")

    def __init__(self) -> None:
        self.value = 0.0
        self._emit: "Callable[[float], None] | None" = None

    def set(self, value: float) -> None:
        self.value = value
        if self._emit is not None:
            self._emit(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount
        if self._emit is not None:
            self._emit(self.value)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount
        if self._emit is not None:
            self._emit(self.value)


class Histogram:
    """Fixed-boundary histogram (cumulative counts, Prometheus-style)."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        # counts[i] = observations <= buckets[i]; one overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        Coarse by construction (bucket resolution); the overflow bucket
        reports the largest finite boundary.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for boundary, bucket_count in zip(self.buckets, self.counts):
            seen += bucket_count
            if seen >= rank:
                return boundary
        return self.buckets[-1]


class MetricsRegistry:
    """Namespace of named, labelled metrics."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._histogram_buckets: dict[str, tuple[float, ...]] = {}
        self._sampler: Callable[[str, dict, float], None] | None = None

    def bind_sampler(self, sampler: Callable[[str, dict, float], None]) -> None:
        """Record every gauge mutation as a timestamped sample.

        ``sampler(name, labels, value)`` is invoked on each ``set`` /
        ``inc`` / ``dec`` of every gauge (existing and future) — the
        :class:`~repro.telemetry.Telemetry` facade binds this to
        :meth:`~repro.telemetry.spans.Tracer.sample` so gauge series land
        in the trace stream next to spans and events.
        """
        self._sampler = sampler
        for (name, label_key), gauge in self._gauges.items():
            gauge._emit = self._emitter_for(name, label_key)

    def _emitter_for(
        self, name: str, label_key: LabelKey
    ) -> Callable[[float], None] | None:
        if self._sampler is None:
            return None
        sampler = self._sampler
        labels = dict(label_key)

        def emit(value: float) -> None:
            sampler(name, labels, value)

        return emit

    # -- accessors ------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
            metric._emit = self._emitter_for(*key)
        return metric

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            # All series of one histogram name share boundaries so their
            # bucket counts stay comparable (and deterministic).
            if name not in self._histogram_buckets:
                self._histogram_buckets[name] = tuple(
                    sorted(buckets) if buckets is not None else DEFAULT_BUCKETS
                )
            metric = self._histograms[key] = Histogram(self._histogram_buckets[name])
        return metric

    # -- output ---------------------------------------------------------

    def counter_value(self, name: str, **labels) -> float:
        """Value of a counter summed over series matching ``labels``.

        Matching is subset-style: a series matches when every given
        label equals the series' value; omitted labels aggregate.
        """
        want = dict(_label_key(labels))
        total = 0.0
        for (metric_name, label_key), counter in self._counters.items():
            if metric_name != name:
                continue
            have = dict(label_key)
            if all(have.get(k) == v for k, v in want.items()):
                total += counter.value
        return total

    def snapshot(self) -> list[dict]:
        """All metrics as sorted, JSON-ready rows."""
        rows: list[dict] = []
        for (name, label_key), counter in self._counters.items():
            rows.append(
                {
                    "kind": "counter",
                    "name": name,
                    "labels": dict(label_key),
                    "value": counter.value,
                }
            )
        for (name, label_key), gauge in self._gauges.items():
            rows.append(
                {
                    "kind": "gauge",
                    "name": name,
                    "labels": dict(label_key),
                    "value": gauge.value,
                }
            )
        for (name, label_key), histogram in self._histograms.items():
            rows.append(
                {
                    "kind": "histogram",
                    "name": name,
                    "labels": dict(label_key),
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "sum": histogram.total,
                    "count": histogram.count,
                }
            )
        rows.sort(key=lambda r: (r["name"], sorted(r["labels"].items()), r["kind"]))
        return rows
