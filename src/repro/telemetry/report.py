"""Per-run dashboard from a trace: the backend of ``repro report``.

Where ``repro trace`` prints a quick summary, this module renders the
full §6-style story of one run from its JSONL record stream, in five
sections:

1. **critical path** — per-attempt durations and the slowest replica
   dependency chain (what verification actually waited on);
2. **node timeline** — per-node busy/idle occupancy over the run window
   (an ASCII/HTML strip per node, plus busy seconds and utilization);
3. **verification tail** — the distribution of ``verify`` span
   durations against fixed buckets, and how far verification ran past
   the last task (the "offline, off the critical path" claim);
4. **suspicion series** — the Fig. 12/13 band time-series read back
   from gauge samples (``suspicion_band_nodes`` et al., published by
   the one shared code path in :mod:`repro.core.gauges`);
5. **event log** — faults, quarantines, evictions, equivocations,
   saturation and every other instant event, in stream order;
6. **network** — simulated message-network counters from the trailing
   metrics snapshot, with dropped messages broken out by cause
   (``filtered`` — a partition/drop rule rejected the send, including
   in-flight messages swept by a filter installed mid-flight —
   vs ``undeliverable`` — the receiving endpoint deregistered);
7. **slo alerts** — the built-in alert rules of
   :mod:`repro.telemetry.slo` evaluated over the record stream (the
   same deterministic firings ``repro alerts`` prints);
8. **rerun economics** — what rerun escalation actually cost and what
   the checkpoint tier saved: per-run attempts, reused (committed)
   jobs and checkpoint commits from the run spans, plus checkpoint
   restores replayed on resume and timeout escalations (with how
   often the ``max_verifier_timeout`` cap clamped them).

``--profile`` adds a host-time section: when the trace was recorded
with ``wall_clock=True``, the gaps between consecutive records' host
timestamps are attributed to the record that closed the gap, giving a
coarse self-profile of the simulator (the ROADMAP's wall-clock item).

Everything here is a pure function of the record list — rendering the
same trace twice is byte-identical, which CI exploits.
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field

from repro.reporting.tables import Series, Table, render_figure
from repro.telemetry.analysis import TraceSummary, gauge_series, summarize
from repro.telemetry.slo import DEFAULT_RULES, AlertFiring, evaluate

#: Verify-duration buckets (seconds, simulated) for section 3.
VERIFY_BUCKETS = (0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

#: Width (characters) of a node occupancy strip.
TIMELINE_CELLS = 60

#: Busy-fraction glyphs for the occupancy strip, from idle to saturated.
_OCCUPANCY_GLYPHS = " .:-=#"

#: Maximum rows in the rendered suspicion series (downsampled evenly).
MAX_SERIES_ROWS = 24

#: Maximum rows in the event log before truncation.
MAX_EVENT_ROWS = 48

#: Maximum rows in the profile hotspot table.
MAX_PROFILE_ROWS = 20

_BANDS = ("none", "low", "med", "high")


@dataclass
class NodeStrip:
    """One node's occupancy over the run window."""

    node: str
    busy_seconds: float
    tasks: int
    utilization: float  # busy_seconds / window length
    strip: str  # TIMELINE_CELLS glyphs, ' ' idle .. '#' saturated


@dataclass
class RunReport:
    """All five dashboard sections, ready to render."""

    source: str | None
    warnings: list[str]
    summary: TraceSummary
    window: tuple[float, float]
    record_count: int
    nodes: list[NodeStrip] = field(default_factory=list)
    verify_buckets: list[tuple[str, int]] = field(default_factory=list)
    suspicion_rows: list[dict] = field(default_factory=list)
    event_rows: list[tuple[float, str, str]] = field(default_factory=list)
    events_truncated: int = 0
    #: (counter name, cause label, total) network message counters.
    network_rows: list[tuple[str, str, int]] = field(default_factory=list)
    #: (name, host_seconds, records) hotspots; None = profiling not requested.
    profile_rows: list[tuple[str, float, int]] | None = None
    profile_total: float = 0.0
    profile_missing: bool = False
    #: SLO alert firings (built-in rules) + how many rules were evaluated.
    alert_firings: list[AlertFiring] = field(default_factory=list)
    alert_rules_evaluated: int = 0


# ---------------------------------------------------------------------------
# building
# ---------------------------------------------------------------------------


def _run_window(records: list[dict]) -> tuple[float, float]:
    start, end = None, None
    for record in records:
        kind = record.get("type")
        if kind == "span" and record.get("end") is not None:
            t0, t1 = record["start"], record["end"]
        elif kind == "event" or kind == "sample":
            t0 = t1 = record.get("ts", 0.0)
        else:
            continue
        start = t0 if start is None else min(start, t0)
        end = t1 if end is None else max(end, t1)
    if start is None:
        return (0.0, 0.0)
    return (start, end)


def _node_strips(
    records: list[dict], window: tuple[float, float], top_nodes: int
) -> list[NodeStrip]:
    intervals: dict[str, list[tuple[float, float]]] = {}
    for record in records:
        if record.get("type") != "span" or record.get("name") != "task":
            continue
        if record.get("end") is None:
            continue
        node = (record.get("attrs") or {}).get("node")
        if node is None:
            continue
        intervals.setdefault(str(node), []).append(
            (record["start"], record["end"])
        )

    t0, t1 = window
    length = max(t1 - t0, 1e-12)
    cell = length / TIMELINE_CELLS
    strips: list[NodeStrip] = []
    for node, spans in intervals.items():
        busy = sum(end - start for start, end in spans)
        occupancy = [0.0] * TIMELINE_CELLS
        for start, end in spans:
            for index in range(TIMELINE_CELLS):
                lo = t0 + index * cell
                hi = lo + cell
                overlap = min(end, hi) - max(start, lo)
                if overlap > 0:
                    occupancy[index] += overlap / cell
        glyphs = []
        for value in occupancy:
            # value is summed concurrency; clamp at 1.5+ tasks => '#'.
            scaled = min(value / 1.5, 1.0)
            glyphs.append(
                _OCCUPANCY_GLYPHS[
                    min(
                        int(scaled * (len(_OCCUPANCY_GLYPHS) - 1) + 1e-9),
                        len(_OCCUPANCY_GLYPHS) - 1,
                    )
                    if value > 0
                    else 0
                ]
            )
        strips.append(
            NodeStrip(
                node=node,
                busy_seconds=busy,
                tasks=len(spans),
                utilization=busy / length,
                strip="".join(glyphs),
            )
        )
    strips.sort(key=lambda s: (-s.busy_seconds, s.node))
    return strips[:top_nodes]


def _verify_histogram(summary_records: list[dict]) -> list[tuple[str, int]]:
    counts = [0] * (len(VERIFY_BUCKETS) + 1)
    for record in summary_records:
        if record.get("type") != "span" or record.get("name") != "verify":
            continue
        if record.get("end") is None:
            continue
        duration = record["end"] - record["start"]
        for index, boundary in enumerate(VERIFY_BUCKETS):
            if duration <= boundary:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    rows: list[tuple[str, int]] = []
    previous = 0.0
    for boundary, count in zip(VERIFY_BUCKETS, counts):
        rows.append((f"{previous:g}–{boundary:g}s", count))
        previous = boundary
    rows.append((f">{VERIFY_BUCKETS[-1]:g}s", counts[-1]))
    return rows


def _suspicion_rows(records: list[dict]) -> list[dict]:
    """Time-indexed band counts, merged across gauge series."""
    by_time: dict[float, dict] = {}

    def row(ts: float) -> dict:
        if ts not in by_time:
            by_time[ts] = {"time": ts}
        return by_time[ts]

    for band in _BANDS:
        for ts, value in gauge_series(
            records, "suspicion_band_nodes", band=band
        ):
            row(ts)[band] = value
    for name, column in (
        ("suspicion_suspects", "suspects"),
        ("fault_analyzer_disjoint_sets", "|D|"),
        ("nodes_quarantined", "quarantined"),
    ):
        for ts, value in gauge_series(records, name):
            row(ts)[column] = value
    rows = [by_time[ts] for ts in sorted(by_time)]
    # Carry the last seen value forward so downsampling never shows
    # holes, then keep only the latest row per timestamp.
    carried: dict = {}
    for entry in rows:
        carried.update(entry)
        entry.update({k: v for k, v in carried.items() if k not in entry})
    if len(rows) > MAX_SERIES_ROWS:
        stride = (len(rows) + MAX_SERIES_ROWS - 1) // MAX_SERIES_ROWS
        sampled = rows[::stride]
        if sampled[-1] is not rows[-1]:
            sampled.append(rows[-1])
        rows = sampled
    return rows


def _event_rows(
    records: list[dict],
) -> tuple[list[tuple[float, str, str]], int]:
    rows: list[tuple[float, str, str]] = []
    for record in records:
        if record.get("type") != "event":
            continue
        attrs = record.get("attrs") or {}
        detail = " ".join(
            f"{key}={_compact(value)}" for key, value in sorted(attrs.items())
        )
        rows.append((record.get("ts", 0.0), record["name"], detail))
    truncated = max(len(rows) - MAX_EVENT_ROWS, 0)
    return rows[:MAX_EVENT_ROWS], truncated


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return json.dumps(list(value), separators=(",", ":"))
    return str(value)


def _network_rows(records: list[dict]) -> list[tuple[str, str, int]]:
    """Message-network counter totals from the trailing metrics
    snapshot, sorted by (name, cause) for stable rendering."""
    rows: list[tuple[str, str, int]] = []
    for record in records:
        if record.get("type") != "metric":
            continue
        if record.get("metric_kind") != "counter":
            continue
        name = record.get("name", "")
        if not name.startswith("network_messages_"):
            continue
        labels = record.get("labels") or {}
        rows.append((name, str(labels.get("cause", "")), int(record["value"])))
    rows.sort()
    return rows


def _profile_rows(
    records: list[dict],
) -> tuple[list[tuple[str, float, int]], float, bool]:
    """Attribute host-time gaps between consecutive records.

    The gap before record *i* is the simulator work that produced it, so
    it is charged to record *i*'s name.  Coarse, but it needs no extra
    instrumentation beyond ``wall_clock=True`` and reliably surfaces
    which subsystem burns host time.
    """
    seconds: dict[str, float] = {}
    counts: dict[str, int] = {}
    previous: float | None = None
    saw_host_time = False
    for record in records:
        host = record.get("host_time")
        if host is None:
            continue
        saw_host_time = True
        if previous is not None:
            name = record.get("name", record.get("type", "?"))
            seconds[name] = seconds.get(name, 0.0) + (host - previous)
            counts[name] = counts.get(name, 0) + 1
        previous = host
    rows = sorted(
        ((name, total, counts[name]) for name, total in seconds.items()),
        key=lambda item: (-item[1], item[0]),
    )[:MAX_PROFILE_ROWS]
    total = sum(seconds.values())
    return rows, total, not saw_host_time


def build_report(
    records: list[dict],
    source: str | None = None,
    warnings: list[str] | None = None,
    top_nodes: int = 16,
    profile: bool = False,
) -> RunReport:
    """Assemble every dashboard section from a record stream."""
    summary = summarize(records)
    window = _run_window(records)
    report = RunReport(
        source=source,
        warnings=list(warnings or []),
        summary=summary,
        window=window,
        record_count=len(records),
        nodes=_node_strips(records, window, top_nodes),
        verify_buckets=_verify_histogram(records),
        suspicion_rows=_suspicion_rows(records),
        network_rows=_network_rows(records),
        alert_firings=evaluate(records, DEFAULT_RULES),
        alert_rules_evaluated=len(DEFAULT_RULES),
    )
    report.event_rows, report.events_truncated = _event_rows(records)
    if profile:
        report.profile_rows, report.profile_total, report.profile_missing = (
            _profile_rows(records)
        )
    return report


# ---------------------------------------------------------------------------
# text rendering
# ---------------------------------------------------------------------------


def _section(title: str) -> list[str]:
    return ["", title, "=" * len(title)]


def render_text(report: RunReport) -> str:
    lines: list[str] = []
    lines.append("repro report" + (f" — {report.source}" if report.source else ""))
    t0, t1 = report.window
    lines.append(
        f"window: {t0:.3f}s – {t1:.3f}s simulated "
        f"({report.record_count} trace records)"
    )
    for warning in report.warnings:
        lines.append(f"warning: {warning}")
    summary = report.summary
    for span in summary.run_spans:
        attrs = span.get("attrs") or {}
        lines.append(
            f"run {attrs.get('script_id', '?')}: "
            f"{span['end'] - span['start']:.3f}s simulated, "
            f"mode={attrs.get('mode', '?')}, assured={attrs.get('assured', '?')}"
        )

    # 1. critical path -------------------------------------------------
    lines += _section("1. critical path")
    if not summary.attempts:
        lines.append("no job/task spans in trace")
    for attempt in summary.attempts:
        lines.append(
            f"attempt {attempt.attempt}: {attempt.duration:.3f}s, "
            f"{attempt.jobs} job replicas, {attempt.tasks} tasks "
            f"({attempt.task_seconds:.3f} busy task-seconds)"
        )
        if attempt.critical_path:
            cp = attempt.critical_path
            lines.append(
                f"  critical path (replica {cp.replica}, {cp.duration:.3f}s): "
                + " -> ".join(cp.job_ids)
            )

    # 2. node timeline -------------------------------------------------
    lines += _section("2. node timeline (busy/idle)")
    if not report.nodes:
        lines.append("no per-node task spans in trace")
    else:
        width = max(len(strip.node) for strip in report.nodes)
        for strip in report.nodes:
            lines.append(
                f"{strip.node:<{width}} |{strip.strip}| "
                f"{strip.busy_seconds:9.3f}s busy, {strip.tasks:4d} tasks, "
                f"{strip.utilization * 100:5.1f}%"
            )
        total_nodes = len(summary.node_seconds)
        if total_nodes > len(report.nodes):
            lines.append(f"... {total_nodes - len(report.nodes)} more nodes")

    # 3. verification tail --------------------------------------------
    lines += _section("3. verification tail")
    if summary.verify_count == 0:
        lines.append("no verify spans in trace")
    else:
        status = ", ".join(
            f"{k}={v}" for k, v in sorted(summary.verify_by_status.items())
        )
        lines.append(
            f"{summary.verify_seconds:.3f} span-seconds across "
            f"{summary.verify_count} sids ({status})"
        )
        lines.append(
            f"tail past last task: {summary.verify_tail_seconds:.3f}s "
            f"(offline, off the critical path)"
        )
        table = Table("verify span durations", ["bucket", "count", ""])
        peak = max((count for _, count in report.verify_buckets), default=0)
        for label, count in report.verify_buckets:
            bar = "#" * (0 if peak == 0 else round(count / peak * 30))
            table.add_row(label, count, bar)
        lines.append("")
        lines.append(table.render())

    # 4. suspicion series ---------------------------------------------
    lines += _section("4. suspicion series")
    if not report.suspicion_rows:
        lines.append(
            "no suspicion gauge samples in trace "
            "(series are published by fault handling; a fault-free plain "
            "run carries none)"
        )
    else:
        columns = ["low", "med", "high", "suspects", "|D|"]
        if any("quarantined" in row for row in report.suspicion_rows):
            columns.append("quarantined")
        series = [Series(name) for name in columns]
        for row in report.suspicion_rows:
            for column, entry in zip(columns, series):
                entry.add(f"{row['time']:g}", float(row.get(column, 0)))
        lines.append(
            render_figure("suspicion bands over time", "time", series)
        )

    # 5. event log -----------------------------------------------------
    lines += _section("5. event log")
    if not report.event_rows:
        lines.append("no events in trace")
    else:
        counts = Table("event counts", ["event", "count"])
        for name, count in sorted(summary.event_counts.items()):
            counts.add_row(name, count)
        lines.append(counts.render())
        lines.append("")
        for ts, name, detail in report.event_rows:
            lines.append(f"[{ts:10.3f}] {name:<24} {detail}")
        if report.events_truncated:
            lines.append(f"... {report.events_truncated} more events")

    # 6. network -------------------------------------------------------
    lines += _section("6. network")
    if not report.network_rows:
        lines.append(
            "no network counters in trace (runs without a replicated "
            "front-end exchange no simulated messages, and counters "
            "need the trailing metrics snapshot)"
        )
    else:
        table = Table("message counters", ["counter", "cause", "count"])
        for name, cause, value in report.network_rows:
            table.add_row(name, cause or "-", value)
        lines.append(table.render())

    # 7. slo alerts ----------------------------------------------------
    lines += _section("7. slo alerts")
    if not report.alert_firings:
        lines.append(
            f"no alerts fired ({report.alert_rules_evaluated} built-in "
            f"rules evaluated)"
        )
    else:
        still = sum(1 for f in report.alert_firings if f.resolved_at is None)
        lines.append(
            f"{still} firing, {len(report.alert_firings) - still} resolved "
            f"({report.alert_rules_evaluated} built-in rules evaluated)"
        )
        table = Table(
            "alert firings",
            ["severity", "rule", "fired at", "resolved at", "peak"],
        )
        for firing in report.alert_firings:
            table.add_row(
                firing.severity,
                firing.rule + firing.group_label,
                f"{firing.fired_at:.3f}",
                "-" if firing.resolved_at is None
                else f"{firing.resolved_at:.3f}",
                f"{firing.peak:g}",
            )
        lines.append(table.render())

    # 8. rerun economics ----------------------------------------------
    lines += _section("8. rerun economics")
    if not summary.run_spans:
        lines.append("no run spans in trace")
    else:
        table = Table(
            "per-run reuse", ["run", "attempts", "reused jobs", "checkpoints"]
        )
        for span in summary.run_spans:
            attrs = span.get("attrs") or {}
            table.add_row(
                attrs.get("script_id", "?"),
                attrs.get("attempts", "-"),
                attrs.get("reused_jobs", 0),
                attrs.get("checkpoints", 0),
            )
        lines.append(table.render())
        counts = summary.event_counts
        lines.append("")
        lines.append(
            f"checkpoint commits: {counts.get('checkpoint.commit', 0)}, "
            f"restored on resume: {counts.get('checkpoint.restore', 0)}"
        )
        lines.append(
            f"timeout escalations: {counts.get('escalation', 0)} "
            f"(capped by max_verifier_timeout: "
            f"{counts.get('audit.timeout_cap', 0)})"
        )

    # host-time profile (opt-in) --------------------------------------
    if report.profile_rows is not None:
        lines += _section("host-time profile")
        if report.profile_missing:
            lines.append(
                "trace has no host_time fields; record with "
                "Telemetry.recording(wall_clock=True) or "
                "`repro run --trace out.jsonl --profile-host`"
            )
        else:
            lines.append(
                f"{report.profile_total:.3f} host-seconds attributed across "
                f"record gaps (coarse: each gap charged to the record that "
                f"closed it)"
            )
            table = Table(
                "hotspots", ["record name", "host seconds", "records", "share"]
            )
            for name, seconds, count in report.profile_rows:
                share = (
                    seconds / report.profile_total * 100
                    if report.profile_total > 0
                    else 0.0
                )
                table.add_row(name, f"{seconds:.4f}", count, f"{share:.1f}%")
            lines.append("")
            lines.append(table.render())

    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# html rendering
# ---------------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       max-width: 72rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
pre { background: #f6f6fa; padding: .8rem; overflow-x: auto;
      border-left: 3px solid #5555aa; font-size: .82rem; line-height: 1.35; }
.warning { color: #aa3311; font-weight: 600; }
svg { background: #f6f6fa; border-left: 3px solid #5555aa; }
.legend span { margin-right: 1.2rem; font-size: .85rem; }
"""

_SERIES_COLORS = {
    "low": "#7aa6c2",
    "med": "#e0a83c",
    "high": "#c94f3d",
    "suspects": "#5b5ea6",
    "|D|": "#3d8b5f",
    "quarantined": "#8a5ac2",
}


def _svg_series_chart(rows: list[dict], width: int = 640, height: int = 220) -> str:
    """Inline SVG line chart of the suspicion series (deterministic)."""
    columns = [c for c in ("low", "med", "high", "suspects", "|D|", "quarantined")
               if any(c in row for row in rows)]
    if not rows or not columns:
        return ""
    times = [row["time"] for row in rows]
    t_lo, t_hi = min(times), max(times)
    v_hi = max(
        (float(row.get(column, 0)) for row in rows for column in columns),
        default=0.0,
    )
    t_span = max(t_hi - t_lo, 1e-9)
    v_span = max(v_hi, 1e-9)
    pad = 28
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">'
    ]
    # axes
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - 8}" '
        f'y2="{height - pad}" stroke="#888" stroke-width="1"/>'
    )
    parts.append(
        f'<line x1="{pad}" y1="8" x2="{pad}" y2="{height - pad}" '
        f'stroke="#888" stroke-width="1"/>'
    )
    parts.append(
        f'<text x="{pad}" y="{height - 8}" font-size="10">{t_lo:g}</text>'
    )
    parts.append(
        f'<text x="{width - 40}" y="{height - 8}" font-size="10">{t_hi:g}</text>'
    )
    parts.append(f'<text x="4" y="16" font-size="10">{v_hi:g}</text>')
    for column in columns:
        points = []
        for row in rows:
            x = pad + (row["time"] - t_lo) / t_span * (width - pad - 12)
            y = (height - pad) - float(row.get(column, 0)) / v_span * (
                height - pad - 14
            )
            points.append(f"{x:.1f},{y:.1f}")
        color = _SERIES_COLORS.get(column, "#333333")
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.6" '
            f'points="{" ".join(points)}"/>'
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span style="color:{_SERIES_COLORS.get(c, "#333")}">&#9632; '
        f"{_html.escape(c)}</span>"
        for c in columns
    )
    return f'<div class="legend">{legend}</div>\n' + "".join(parts)


def render_html(report: RunReport) -> str:
    """Single-file HTML dashboard (no external assets, deterministic)."""
    text = render_text(report)
    # Split the text rendering back into its sections; each becomes a
    # <pre> block so the two formats can never drift apart, with the
    # suspicion series additionally charted as SVG.
    sections: list[tuple[str, str]] = []
    current_title, current_lines = "overview", []
    for line in text.splitlines():
        if set(line) == {"="} and current_lines:
            title = current_lines.pop()
            sections.append((current_title, "\n".join(current_lines)))
            current_title, current_lines = title, []
        else:
            current_lines.append(line)
    sections.append((current_title, "\n".join(current_lines)))

    out = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8"/>',
        f"<title>repro report{_html.escape(' — ' + report.source if report.source else '')}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>repro report{_html.escape(' — ' + report.source if report.source else '')}</h1>",
    ]
    for warning in report.warnings:
        out.append(f'<p class="warning">warning: {_html.escape(warning)}</p>')
    for title, body in sections:
        if title != "overview":
            out.append(f"<h2>{_html.escape(title)}</h2>")
        if title.startswith("4.") and report.suspicion_rows:
            out.append(_svg_series_chart(report.suspicion_rows))
        out.append(f"<pre>{_html.escape(body.strip(chr(10)))}</pre>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"
