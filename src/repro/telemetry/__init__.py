"""Telemetry subsystem: sim-time tracing, metrics, exporters.

Observability for the reproduction's control and computation tiers.  The
paper's whole evaluation (§6) is about *where time goes* — verification
off the critical path, recomputation savings, isolation speed — and
this package is the layer that attributes it: a span tracer keyed to
the deterministic event-loop clock, a metrics registry, and trace
exporters (JSONL + Chrome ``trace_event``).

Usage::

    from repro.telemetry import Telemetry

    telemetry = Telemetry.recording()
    controller = ClusterBFTController(config, telemetry=telemetry)
    controller.run_assured(script)
    telemetry.write_jsonl("run.jsonl")
    telemetry.write_chrome_trace("run.chrome.json")

Everything defaults to :data:`DISABLED` — a no-op facade whose tracer
and metrics cost one attribute load per instrumentation site and which
guarantees the simulation is bit-identical with telemetry on or off
(the tracer never schedules loop events and never draws randomness).
"""

from __future__ import annotations

from typing import Callable

from repro.telemetry.export import (
    JsonlStreamSink,
    read_jsonl,
    read_jsonl_lenient,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    NULL_TRACER,
    InMemorySink,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "Telemetry",
    "DISABLED",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "InMemorySink",
    "JsonlStreamSink",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "read_jsonl",
    "read_jsonl_lenient",
    "to_jsonl",
    "to_chrome_trace",
    "write_jsonl",
    "write_chrome_trace",
]


class _NullMetric:
    __slots__ = ()

    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class _NullMetrics:
    """Registry stand-in for disabled telemetry: accepts, records nothing."""

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, buckets=None, **labels) -> _NullMetric:
        return _NULL_METRIC

    def counter_value(self, name: str, **labels) -> float:
        return 0.0

    def snapshot(self) -> list[dict]:
        return []


class Telemetry:
    """Facade bundling one tracer, one metrics registry, and sinks.

    ``enabled`` is the flag hot paths check before building attribute
    dicts.  The singleton :data:`DISABLED` (``Telemetry.disabled()``) is
    the default everywhere a component accepts a ``telemetry=`` argument.
    """

    enabled = True

    #: Causal message tracing: when True, `SimNetwork` and the digest
    #: path emit paired send/recv events and parent in-handler records
    #: to the delivery — see :mod:`repro.telemetry.causal`.  Purely an
    #: extra-records switch; it never perturbs the simulation.
    causal = False

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        wall_clock: bool = False,
        stream_path: str | None = None,
        causal: bool = False,
    ) -> None:
        self.causal = bool(causal)
        self.sink = InMemorySink()
        self.stream_sink: JsonlStreamSink | None = None
        sinks: list = [self.sink]
        if stream_path is not None:
            # Streaming mode is memory-bounded: records go to disk only
            # (the in-memory sink stays attached-but-empty so consumers
            # of ``.sink`` keep working).
            self.stream_sink = JsonlStreamSink(stream_path)
            sinks = [self.stream_sink]
        self.tracer = Tracer(clock or (lambda: 0.0), sinks, wall_clock=wall_clock)
        self.metrics = MetricsRegistry()
        # Gauge mutations become timestamped `sample` records in the
        # trace stream — the registry snapshot alone only keeps finals.
        self.metrics.bind_sampler(self.tracer.sample)

    @classmethod
    def recording(
        cls,
        clock: Callable[[], float] | None = None,
        wall_clock: bool = False,
        causal: bool = False,
    ) -> "Telemetry":
        """An enabled telemetry pipeline backed by an in-memory sink."""
        return cls(clock=clock, wall_clock=wall_clock, causal=causal)

    @classmethod
    def streaming(
        cls,
        path: str,
        clock: Callable[[], float] | None = None,
        wall_clock: bool = False,
        causal: bool = False,
    ) -> "Telemetry":
        """An enabled pipeline that writes records through to ``path``
        (JSONL) as they are emitted; call :meth:`finalize` when done."""
        return cls(clock=clock, stream_path=path, wall_clock=wall_clock, causal=causal)

    def finalize(self) -> int | None:
        """Append the trailing metrics snapshot to the stream sink and
        close it (flush + fsync); returns total records written (None
        when not streaming).  Idempotent: a second call closes nothing
        and appends no duplicate snapshot.  The resulting file matches
        what :meth:`write_jsonl` would have produced from an in-memory
        run."""
        if self.stream_sink is None:
            return None
        if self.stream_sink.closed:
            return self.stream_sink.records_written
        now = self.tracer.clock()
        for row in self.metrics.snapshot():
            record = {"type": "metric", "metric_kind": row.pop("kind"), "ts": now}
            record.update(row)
            self.stream_sink.handle(record)
        return self.stream_sink.close()

    @staticmethod
    def disabled() -> "Telemetry":
        return DISABLED

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the sim-time clock (done by whoever owns the loop)."""
        self.tracer.clock = clock

    def observe_loop(self, loop) -> None:
        """Count processed loop events per label family (``hb:*`` → ``hb``)."""
        counters = self.metrics

        def on_event(label: str) -> None:
            family = label.split(":", 1)[0] if label else "unlabelled"
            counters.counter("sim_events_processed", family=family).inc()

        loop.on_event = on_event

    # -- export ---------------------------------------------------------

    def export_records(self) -> list[dict]:
        """Trace records plus a trailing metrics snapshot."""
        now = self.tracer.clock()
        records = list(self.sink.records)
        for row in self.metrics.snapshot():
            record = {"type": "metric", "metric_kind": row.pop("kind"), "ts": now}
            record.update(row)
            records.append(record)
        return records

    def write_jsonl(self, path: str) -> int:
        return write_jsonl(self.export_records(), path)

    def write_chrome_trace(self, path: str) -> int:
        return write_chrome_trace(self.export_records(), path)


class _DisabledTelemetry(Telemetry):
    """Shared no-op facade; safe to pass everywhere, records nothing."""

    enabled = False
    causal = False

    def __init__(self) -> None:
        self.sink = InMemorySink()  # stays empty: NULL_TRACER never writes
        self.stream_sink = None
        self.tracer = NULL_TRACER
        self.metrics = _NullMetrics()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def observe_loop(self, loop) -> None:
        pass

    def export_records(self) -> list[dict]:
        return []


DISABLED = _DisabledTelemetry()
