"""Sim-time span tracing.

The tracer is keyed to the deterministic :class:`~repro.simulation.events.EventLoop`
clock: every span/event timestamp is *simulated* seconds, so two runs
with the same seed produce byte-identical traces.  Wall-clock capture is
an opt-in extra field (useful to find slow spots in the simulator
itself) and never participates in determinism-sensitive output.

Two styles of instrumentation coexist because the codebase mixes
straight-line code with event-driven callbacks:

* ``with tracer.span("verify", sid=sid):`` — context-manager nesting for
  synchronous sections; parentage follows the active-span stack.
* ``span = tracer.begin(...)`` / ``span.end(...)`` — explicit lifetime
  for spans that open in one event-loop callback and close in another
  (a job replica spans many heartbeats).
* ``tracer.emit("task", start=t0, end=t1, ...)`` — a completed span
  whose duration was *simulated* (the discrete-event engine decides a
  task's duration up front and schedules its completion); there is no
  live code region to wrap.

The default tracer everywhere is :data:`NULL_TRACER`, whose every method
is a no-op and whose ``enabled`` flag lets hot paths skip building
attribute dictionaries entirely — tracing off must cost nothing and,
critically, must not perturb the simulation (the tracer never schedules
events and never draws randomness).
"""

from __future__ import annotations

import time as _time
from typing import Any, Callable, Protocol


class TelemetrySink(Protocol):
    """Receives telemetry records (plain dicts) in emission order."""

    def handle(self, record: dict) -> None: ...


class Span:
    """One open span; close it with :meth:`end`."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "start", "attrs", "_open")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        attrs: dict,
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.attrs = attrs
        self._open = True

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    def end(self, end: float | None = None, **attrs: Any) -> None:
        if not self._open:
            return
        self._open = False
        if attrs:
            self.attrs.update(attrs)
        self._tracer._close(self, end)

    # -- context manager ------------------------------------------------

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.end()


class _NullSpan:
    """Inert span handed out by :class:`NullTracer`."""

    __slots__ = ()

    span_id = 0
    parent_id = None

    def set(self, **attrs: Any) -> None:
        pass

    def end(self, end: float | None = None, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost default: every operation is a no-op.

    ``enabled`` is False so instrumentation sites can guard expensive
    attribute construction::

        if tracer.enabled:
            tracer.event("digest", node=node_id, bytes=len(payload))
    """

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, parent: Any = None, start: float | None = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        parent: Any = None,
        **attrs: Any,
    ) -> None:
        pass

    def event(self, name: str, time: float | None = None, **attrs: Any) -> int:
        return 0

    def sample(self, name: str, labels: dict, value: float, time: float | None = None) -> None:
        pass

    def push_context(self, ref: int) -> None:
        pass

    def pop_context(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Records spans and instant events against a supplied clock.

    ``clock`` is typically ``lambda: loop.now`` for an
    :class:`~repro.simulation.events.EventLoop`; any zero-argument
    callable returning seconds works.  ``wall_clock=True`` additionally
    stamps each record with ``host_time`` (``time.monotonic()``) — never
    enable it when traces must be byte-comparable across runs.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        sinks: list[TelemetrySink] | None = None,
        wall_clock: bool = False,
    ) -> None:
        self.clock = clock
        self.sinks = list(sinks or [])
        self.wall_clock = wall_clock
        self._next_id = 1
        self._stack: list[int] = []
        self.spans_recorded = 0
        self.events_recorded = 0
        self.samples_recorded = 0

    def add_sink(self, sink: TelemetrySink) -> None:
        self.sinks.append(sink)

    # -- span lifecycle -------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _current_parent(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span for use as a context manager (stack parentage)."""
        return self.begin(name, **attrs)

    def begin(
        self,
        name: str,
        parent: "Span | int | None" = None,
        start: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span with explicit lifetime; close via ``span.end()``."""
        parent_id = (
            parent.span_id
            if isinstance(parent, Span)
            else parent
            if parent is not None
            else self._current_parent()
        )
        return Span(
            self,
            self._new_id(),
            parent_id,
            name,
            self.clock() if start is None else start,
            attrs,
        )

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> None:
        """Record an already-completed span (simulated duration)."""
        span = self.begin(name, parent=parent, start=start, **attrs)
        span.end(end=end)

    def _close(self, span: Span, end: float | None) -> None:
        self.spans_recorded += 1
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": self.clock() if end is None else end,
            "attrs": span.attrs,
        }
        self._dispatch(record)

    def event(self, name: str, time: float | None = None, **attrs: Any) -> int:
        """Record an instant event; returns the record id.

        Event ids share the span id space, so an event can serve as a
        causal anchor: :meth:`push_context` makes it the parent of
        everything recorded until the matching :meth:`pop_context` —
        how message deliveries stitch the causal chain together.
        """
        self.events_recorded += 1
        event_id = self._new_id()
        record = {
            "type": "event",
            "id": event_id,
            "parent": self._current_parent(),
            "name": name,
            "ts": self.clock() if time is None else time,
            "attrs": attrs,
        }
        self._dispatch(record)
        return event_id

    def push_context(self, ref: int) -> None:
        """Make record ``ref`` the default parent for subsequent records."""
        self._stack.append(ref)

    def pop_context(self) -> None:
        if self._stack:
            self._stack.pop()

    def sample(
        self, name: str, labels: dict, value: float, time: float | None = None
    ) -> None:
        """Record one timestamped point of a gauge time-series.

        Samples are how metric *history* reaches the trace (the trailing
        metrics snapshot only keeps final values); the registry's bound
        sampler routes every gauge mutation here.
        """
        self.samples_recorded += 1
        record = {
            "type": "sample",
            "name": name,
            "labels": labels,
            "ts": self.clock() if time is None else time,
            "value": value,
        }
        self._dispatch(record)

    def _dispatch(self, record: dict) -> None:
        if self.wall_clock:
            # Host timestamps are opt-in profiling metadata, never fed
            # back into simulation state or digests.
            record["host_time"] = _time.monotonic()  # lint: allow DET002 wall-clock profiling sink
        for sink in self.sinks:
            sink.handle(record)


class InMemorySink:
    """Accumulates records in order; the default sink for tests/CLI."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def handle(self, record: dict) -> None:
        self.records.append(record)

    def spans(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    def samples(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records
            if r["type"] == "sample" and (name is None or r["name"] == name)
        ]

    def __len__(self) -> int:
        return len(self.records)
