"""Trace exporters: JSONL event stream and Chrome ``trace_event``.

JSONL is the canonical on-disk form — one record per line, keys sorted,
append-only in emission order — consumed back by
:mod:`repro.telemetry.analysis` and the ``repro trace`` CLI.  The Chrome
format is a view for humans: load it in Perfetto or ``chrome://tracing``
to scrub through a run visually.

Simulated seconds map to trace microseconds (1 sim second = 1e6 µs);
tracks (Chrome ``tid``) are derived from span attributes — worker node
ids get their own track, control-tier spans share one — numbered in
order of first appearance, which is deterministic because the record
stream is.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable

#: Span/event attributes that select a Chrome track, in priority order.
_TRACK_ATTRS = ("node", "replica_id", "track")

_CONTROL_TRACK = "control-tier"


def to_jsonl(records: Iterable[dict]) -> str:
    """Serialize records as JSON Lines (sorted keys, one per line)."""
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def write_jsonl(records: Iterable[dict], path: str) -> int:
    """Write a JSONL trace file; returns the number of records."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


class JsonlStreamSink:
    """Write-through telemetry sink: every record lands on disk as it is
    emitted, one JSONL line per record, instead of accumulating in
    memory.  This is what bounds a chaos campaign's footprint — hundreds
    of traced runs stream to files rather than growing the heap — and
    what preserves the trace prefix if a run dies mid-flight.

    The line format is byte-identical to :func:`write_jsonl` over the
    same records, so :func:`read_jsonl` and the trace analysis tools
    consume either interchangeably.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: IO[str] | None = open(path, "w")
        self.records_written = 0

    def handle(self, record: dict) -> None:
        if self._handle is None:
            return  # closed: late stragglers are dropped, not crashed on
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self.records_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    @property
    def closed(self) -> bool:
        return self._handle is None

    def close(self) -> int:
        """Flush, fsync and close; returns the total records written.

        Idempotent: a second close is a no-op returning the same count.
        The fsync makes the trace tail durable before the caller treats
        the run as finished — the same discipline the control-plane
        journal applies to its commit records.
        """
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None
        return self.records_written


def read_jsonl(path_or_file: str | IO[str]) -> list[dict]:
    """Load a JSONL trace (skips blank lines)."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            lines = handle.readlines()
    else:
        lines = path_or_file.readlines()
    return [json.loads(line) for line in lines if line.strip()]


def read_jsonl_lenient(
    path_or_file: str | IO[str],
) -> tuple[list[dict], list[str]]:
    """Load a possibly-truncated streaming trace, best-effort.

    A run that died mid-flight leaves a :class:`JsonlStreamSink` file
    whose last line may be cut off and whose trailing metrics snapshot
    (``Telemetry.finalize()``) never landed.  Instead of crashing the
    analysis tools, return every parseable record plus human-readable
    warnings describing what is missing.  A parse error anywhere *other*
    than the tail still raises — that is a corrupt file, not a
    truncated one.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file) as handle:
            lines = handle.readlines()
    else:
        lines = path_or_file.readlines()
    lines = [line for line in lines if line.strip()]
    warnings: list[str] = []
    records: list[dict] = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError as exc:
            if index == len(lines) - 1:
                warnings.append(
                    f"trace truncated: dropped unparseable final line "
                    f"(record {index + 1}): {exc}"
                )
                break
            raise
    if not records:
        warnings.append("trace is empty (no records)")
    elif not any(r.get("type") == "metric" for r in records):
        warnings.append(
            "trace has no metrics snapshot (run never reached finalize()); "
            "counter/gauge totals are reconstructed from the stream prefix"
        )
    return records, warnings


def _track_for(record: dict) -> str:
    attrs = record.get("attrs") or {}
    for key in _TRACK_ATTRS:
        value = attrs.get(key)
        if value is not None:
            return str(value)
    return _CONTROL_TRACK


def to_chrome_trace(records: Iterable[dict]) -> dict:
    """Convert a record stream to a Chrome ``trace_event`` document."""
    trace_events: list[dict] = []
    tids: dict[str, int] = {}

    def tid_for(record: dict) -> int:
        track = _track_for(record)
        if track not in tids:
            tids[track] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[track],
                    "args": {"name": track},
                }
            )
        return tids[track]

    for record in records:
        kind = record.get("type")
        if kind == "span":
            end = record.get("end")
            if end is None:
                continue  # span never closed (cancelled run drained late)
            trace_events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": record["name"].split(".")[0],
                    "ts": record["start"] * 1e6,
                    "dur": (end - record["start"]) * 1e6,
                    "pid": 1,
                    "tid": tid_for(record),
                    "args": dict(record.get("attrs") or {}, span_id=record["id"]),
                }
            )
        elif kind == "event":
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": record["name"],
                    "cat": record["name"].split(".")[0],
                    "ts": record["ts"] * 1e6,
                    "pid": 1,
                    "tid": tid_for(record),
                    "args": dict(record.get("attrs") or {}),
                }
            )
        elif kind == "sample":
            # Gauge time-series points render as Chrome counter tracks
            # (one track per name+labels), so Perfetto plots the series.
            labels = record.get("labels") or {}
            suffix = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            trace_events.append(
                {
                    "ph": "C",
                    "name": record["name"] + (f"{{{suffix}}}" if suffix else ""),
                    "ts": record.get("ts", 0.0) * 1e6,
                    "pid": 1,
                    "args": {"value": record["value"]},
                }
            )
        elif kind == "metric" and record.get("metric_kind") == "counter":
            trace_events.append(
                {
                    "ph": "C",
                    "name": record["name"],
                    "ts": record.get("ts", 0.0) * 1e6,
                    "pid": 1,
                    "args": {"value": record["value"]},
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds", "source": "repro.telemetry"},
    }


def write_chrome_trace(records: Iterable[dict], path: str) -> int:
    """Write a Chrome trace JSON file; returns the event count."""
    document = to_chrome_trace(records)
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])
