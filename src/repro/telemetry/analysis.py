"""Trace summarization: turn a JSONL trace back into §6-style numbers.

Backs the ``repro trace`` CLI subcommand.  Given the record stream of a
run, reconstructs:

* the **critical path per attempt** — over ``job`` spans, following the
  ``deps`` attribute the controller stamps on each job replica, the
  dependency chain with the largest end-to-end duration (computed per
  replica; the slowest replica chain is the one verification waits on);
* **time-in-verification vs time-in-execution** — summed ``verify`` span
  durations against summed ``task`` busy seconds, plus the verification
  tail that ran *after* the last task finished (the "offline, off the
  critical path" property of §3.3 made measurable);
* **per-node task time** — busy seconds and task counts by worker node.

:func:`diff_traces` compares two traces of the same script (e.g. a
faulty seed vs a clean one) at attempt/critical-path granularity —
backing ``repro trace --diff a.jsonl b.jsonl``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class CriticalPath:
    replica: int
    job_ids: list[str]
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class AttemptSummary:
    attempt: int
    start: float
    end: float
    jobs: int
    tasks: int
    task_seconds: float
    critical_path: CriticalPath | None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceSummary:
    run_spans: list[dict] = field(default_factory=list)
    attempts: list[AttemptSummary] = field(default_factory=list)
    task_seconds: float = 0.0
    task_count: int = 0
    verify_seconds: float = 0.0
    verify_count: int = 0
    verify_by_status: dict[str, int] = field(default_factory=dict)
    #: Verification time past the last task completion (offline tail).
    verify_tail_seconds: float = 0.0
    node_seconds: dict[str, float] = field(default_factory=dict)
    node_tasks: dict[str, int] = field(default_factory=dict)
    event_counts: dict[str, int] = field(default_factory=dict)
    metric_rows: list[dict] = field(default_factory=list)
    #: Gauge time-series points (``type: sample`` records, in order).
    sample_rows: list[dict] = field(default_factory=list)
    #: Span id -> span name (every span seen, finished or not).  Used by
    #: :class:`TraceDiff` to report added/removed spans when two traces
    #: of "the same" script diverge mid-run (e.g. one seed reruns an
    #: attempt): past the divergence point the same numeric id names
    #: different spans, so id-keyed pairing would lie.
    span_names: dict[int, str] = field(default_factory=dict)

    def render(self, top_nodes: int = 10) -> str:
        lines: list[str] = []
        for span in self.run_spans:
            attrs = span.get("attrs") or {}
            lines.append(
                f"run {attrs.get('script_id', '?')}: "
                f"{span['end'] - span['start']:.3f}s simulated, "
                f"mode={attrs.get('mode', '?')}"
            )
        lines.append("")
        lines.append("attempts:")
        for a in self.attempts:
            lines.append(
                f"  attempt {a.attempt}: {a.duration:.3f}s, "
                f"{a.jobs} job replicas, {a.tasks} tasks "
                f"({a.task_seconds:.3f} busy task-seconds)"
            )
            if a.critical_path:
                cp = a.critical_path
                chain = " -> ".join(cp.job_ids)
                lines.append(
                    f"    critical path (replica {cp.replica}, "
                    f"{cp.duration:.3f}s): {chain}"
                )
        lines.append("")
        lines.append(
            f"execution : {self.task_seconds:.3f} task-seconds "
            f"across {self.task_count} tasks"
        )
        status = ", ".join(
            f"{k}={v}" for k, v in sorted(self.verify_by_status.items())
        )
        lines.append(
            f"verification: {self.verify_seconds:.3f} span-seconds across "
            f"{self.verify_count} sids ({status or 'none'})"
        )
        lines.append(
            f"verification tail past last task: {self.verify_tail_seconds:.3f}s "
            f"(offline, off the critical path)"
        )
        lines.append("")
        lines.append("per-node task time:")
        ranked = sorted(
            self.node_seconds.items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_nodes]
        for node, seconds in ranked:
            lines.append(
                f"  {node:<12} {seconds:10.3f}s  ({self.node_tasks.get(node, 0)} tasks)"
            )
        if len(self.node_seconds) > top_nodes:
            lines.append(f"  ... {len(self.node_seconds) - top_nodes} more nodes")
        if self.event_counts:
            lines.append("")
            lines.append("events:")
            for name, count in sorted(self.event_counts.items()):
                lines.append(f"  {name:<28} {count}")
        return "\n".join(lines)


def _critical_path(job_spans: list[dict]) -> CriticalPath | None:
    """Longest dependency chain by end-to-end duration, per replica."""
    by_replica: dict[int, dict[int, dict]] = {}
    for span in job_spans:
        attrs = span.get("attrs") or {}
        if "job_index" not in attrs:
            continue
        by_replica.setdefault(int(attrs.get("replica", 0)), {})[
            int(attrs["job_index"])
        ] = span

    best: CriticalPath | None = None
    for replica, jobs in by_replica.items():
        # chain(j) = the path ending at j with the earliest reachable start.
        starts: dict[int, float] = {}
        prev: dict[int, int | None] = {}

        def chain_start(index: int) -> float:
            if index in starts:
                return starts[index]
            span = jobs[index]
            deps = [
                d
                for d in (span.get("attrs") or {}).get("deps", [])
                if d in jobs
            ]
            starts[index] = span["start"]  # cycle guard
            best_dep: int | None = None
            best_start = span["start"]
            for dep in deps:
                dep_start = chain_start(dep)
                if dep_start < best_start:
                    best_start, best_dep = dep_start, dep
            starts[index] = best_start
            prev[index] = best_dep
            return best_start

        for index in jobs:
            chain_start(index)
        for index, span in jobs.items():
            end = span.get("end")
            if end is None:
                continue
            duration = end - starts[index]
            if best is None or duration > best.duration:
                path: list[int] = []
                cursor: int | None = index
                while cursor is not None:
                    path.append(cursor)
                    cursor = prev.get(cursor)
                path.reverse()
                best = CriticalPath(
                    replica=replica,
                    job_ids=[
                        (jobs[i].get("attrs") or {}).get("job_id", str(i))
                        for i in path
                    ],
                    start=starts[index],
                    end=end,
                )
    return best


def gauge_series(
    records: list[dict], name: str, **labels
) -> list[tuple[float, float]]:
    """(ts, value) points of one gauge series, in emission order.

    Label matching is subset-style (omitted labels match anything), the
    same convention :meth:`MetricsRegistry.counter_value` uses.  This is
    the read-side of gauge sampling: benchmarks and reports regenerate
    Fig. 12/13-style timelines from a trace instead of keeping bespoke
    in-run bookkeeping.
    """
    want = {k: str(v) for k, v in labels.items()}
    points: list[tuple[float, float]] = []
    for record in records:
        if record.get("type") != "sample" or record.get("name") != name:
            continue
        have = {k: str(v) for k, v in (record.get("labels") or {}).items()}
        if all(have.get(k) == v for k, v in want.items()):
            points.append((record["ts"], record["value"]))
    return points


def last_gauge_value(
    records: list[dict], name: str, default: float | None = None, **labels
) -> float | None:
    """Final value of a gauge series (``default`` when never sampled)."""
    points = gauge_series(records, name, **labels)
    return points[-1][1] if points else default


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``values``.

    Deterministic and interpolation-free so benchmark baselines can be
    gated exactly: the result is always a member of ``values``.
    """
    if not values:
        raise ValueError("percentile of empty series")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q={q} outside [0, 100]")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def first_event(records: list[dict], name: str) -> dict | None:
    """The first ``type: event`` record with ``name``, or None."""
    for record in records:
        if record.get("type") == "event" and record.get("name") == name:
            return record
    return None


def _fmt_delta(before: float, after: float) -> str:
    delta = after - before
    return f"{delta:+.3f}s"


@dataclass
class TraceDiff:
    """Attempt-level comparison of two traces of the same script."""

    a: TraceSummary
    b: TraceSummary
    label_a: str = "a"
    label_b: str = "b"

    def render(self, top_nodes: int = 5) -> str:
        lines: list[str] = []
        lines.append(f"trace diff: {self.label_a} -> {self.label_b}")

        for index, (span_a, span_b) in enumerate(
            zip(self.a.run_spans, self.b.run_spans)
        ):
            dur_a = span_a["end"] - span_a["start"]
            dur_b = span_b["end"] - span_b["start"]
            lines.append(
                f"run[{index}] : {dur_a:.3f}s -> {dur_b:.3f}s "
                f"({_fmt_delta(dur_a, dur_b)})"
            )

        lines.append("")
        lines.append("attempts:")
        attempts_a = {attempt.attempt: attempt for attempt in self.a.attempts}
        attempts_b = {attempt.attempt: attempt for attempt in self.b.attempts}
        for number in sorted(set(attempts_a) | set(attempts_b)):
            in_a, in_b = attempts_a.get(number), attempts_b.get(number)
            if in_a is None or in_b is None:
                present = self.label_b if in_a is None else self.label_a
                only = in_b if in_a is None else in_a
                lines.append(
                    f"  attempt {number}: only in {present} "
                    f"({only.duration:.3f}s, {only.jobs} job replicas, "
                    f"{only.tasks} tasks)"
                )
                continue
            lines.append(
                f"  attempt {number}: {in_a.duration:.3f}s -> "
                f"{in_b.duration:.3f}s ({_fmt_delta(in_a.duration, in_b.duration)}), "
                f"tasks {in_a.tasks} -> {in_b.tasks}, "
                f"busy {in_a.task_seconds:.3f}s -> {in_b.task_seconds:.3f}s"
            )
            cp_a, cp_b = in_a.critical_path, in_b.critical_path
            if cp_a and cp_b:
                lines.append(
                    f"    critical path: {cp_a.duration:.3f}s -> "
                    f"{cp_b.duration:.3f}s "
                    f"({_fmt_delta(cp_a.duration, cp_b.duration)})"
                )
                chain_a = " -> ".join(cp_a.job_ids)
                chain_b = " -> ".join(cp_b.job_ids)
                if chain_a != chain_b:
                    lines.append(f"      {self.label_a}: {chain_a}")
                    lines.append(f"      {self.label_b}: {chain_b}")

        lines.append("")
        lines.append(
            f"execution    : {self.a.task_seconds:.3f}s -> "
            f"{self.b.task_seconds:.3f}s "
            f"({_fmt_delta(self.a.task_seconds, self.b.task_seconds)}, "
            f"tasks {self.a.task_count} -> {self.b.task_count})"
        )
        lines.append(
            f"verification : {self.a.verify_seconds:.3f}s -> "
            f"{self.b.verify_seconds:.3f}s "
            f"({_fmt_delta(self.a.verify_seconds, self.b.verify_seconds)})"
        )
        lines.append(
            f"verify tail  : {self.a.verify_tail_seconds:.3f}s -> "
            f"{self.b.verify_tail_seconds:.3f}s "
            f"({_fmt_delta(self.a.verify_tail_seconds, self.b.verify_tail_seconds)})"
        )
        statuses = sorted(set(self.a.verify_by_status) | set(self.b.verify_by_status))
        if statuses:
            rendered = ", ".join(
                f"{status}={self.a.verify_by_status.get(status, 0)}"
                f"->{self.b.verify_by_status.get(status, 0)}"
                for status in statuses
            )
            lines.append(f"verdicts     : {rendered}")

        deltas = {
            node: self.b.node_seconds.get(node, 0.0)
            - self.a.node_seconds.get(node, 0.0)
            for node in set(self.a.node_seconds) | set(self.b.node_seconds)
        }
        ranked = sorted(
            deltas.items(), key=lambda kv: (-abs(kv[1]), kv[0])
        )[:top_nodes]
        shifted = [(node, delta) for node, delta in ranked if abs(delta) > 1e-9]
        if shifted:
            lines.append("")
            lines.append("largest per-node busy-time shifts:")
            for node, delta in shifted:
                lines.append(f"  {node:<12} {delta:+10.3f}s")
        lines.extend(self._span_divergence())
        return "\n".join(lines)

    def _span_divergence(self) -> list[str]:
        """Added/removed-span section for traces that diverge mid-run.

        Two traces of the same script share a span-id prefix up to the
        first behavioural divergence (a rerun attempt, an extra verify
        round); past it the id sequences drift apart.  Rather than pair
        spans by id — which silently compares unrelated spans — report
        the ids present in only one trace and the first id whose name
        disagrees.
        """
        names_a, names_b = self.a.span_names, self.b.span_names
        only_a = sorted(set(names_a) - set(names_b))
        only_b = sorted(set(names_b) - set(names_a))
        renamed = sorted(
            sid
            for sid in set(names_a) & set(names_b)
            if names_a[sid] != names_b[sid]
        )
        if not (only_a or only_b or renamed):
            return []
        lines = ["", "span divergence (traces not span-for-span aligned):"]
        if renamed:
            first = renamed[0]
            lines.append(
                f"  first diverging span id: {first} "
                f"({self.label_a}: {names_a[first]}, "
                f"{self.label_b}: {names_b[first]})"
            )
        for label, only, names in (
            (self.label_a, only_a, names_a),
            (self.label_b, only_b, names_b),
        ):
            if not only:
                continue
            counts: dict[str, int] = {}
            for sid in only:
                counts[names[sid]] = counts.get(names[sid], 0) + 1
            summary = ", ".join(
                f"{name} x{count}" for name, count in sorted(counts.items())
            )
            lines.append(
                f"  only in {label}: {len(only)} span(s) ({summary})"
            )
        return lines


def diff_traces(
    records_a: list[dict],
    records_b: list[dict],
    label_a: str = "a",
    label_b: str = "b",
) -> TraceDiff:
    """Compare two JSONL traces of the same script."""
    return TraceDiff(
        a=summarize(records_a),
        b=summarize(records_b),
        label_a=label_a,
        label_b=label_b,
    )


def summarize(records: list[dict]) -> TraceSummary:
    summary = TraceSummary()
    job_spans_by_attempt: dict[int, list[dict]] = {}
    task_spans_by_attempt: dict[int, list[dict]] = {}
    last_task_end = 0.0
    last_verify_end = 0.0

    for record in records:
        kind = record.get("type")
        if kind == "event":
            name = record["name"]
            summary.event_counts[name] = summary.event_counts.get(name, 0) + 1
            continue
        if kind == "metric":
            summary.metric_rows.append(record)
            continue
        if kind == "sample":
            summary.sample_rows.append(record)
            continue
        if kind != "span":
            continue
        name = record["name"]
        if "id" in record:
            summary.span_names[record["id"]] = name
        if record.get("end") is None:
            continue
        attrs = record.get("attrs") or {}
        duration = record["end"] - record["start"]
        if name == "run":
            summary.run_spans.append(record)
        elif name == "job":
            job_spans_by_attempt.setdefault(int(attrs.get("attempt", 0)), []).append(
                record
            )
        elif name == "task":
            summary.task_seconds += duration
            summary.task_count += 1
            last_task_end = max(last_task_end, record["end"])
            node = attrs.get("node")
            if node is not None:
                summary.node_seconds[node] = (
                    summary.node_seconds.get(node, 0.0) + duration
                )
                summary.node_tasks[node] = summary.node_tasks.get(node, 0) + 1
            task_spans_by_attempt.setdefault(
                int(attrs.get("attempt", 0)), []
            ).append(record)
        elif name == "verify":
            summary.verify_seconds += duration
            summary.verify_count += 1
            status = attrs.get("status", "open")
            summary.verify_by_status[status] = (
                summary.verify_by_status.get(status, 0) + 1
            )
            last_verify_end = max(last_verify_end, record["end"])

    summary.verify_tail_seconds = max(last_verify_end - last_task_end, 0.0)

    for attempt in sorted(set(job_spans_by_attempt) | set(task_spans_by_attempt)):
        jobs = job_spans_by_attempt.get(attempt, [])
        tasks = task_spans_by_attempt.get(attempt, [])
        spans = jobs + tasks
        start = min(s["start"] for s in spans)
        end = max(s["end"] for s in spans)
        summary.attempts.append(
            AttemptSummary(
                attempt=attempt,
                start=start,
                end=end,
                jobs=len(jobs),
                tasks=len(tasks),
                task_seconds=sum(s["end"] - s["start"] for s in tasks),
                critical_path=_critical_path(jobs),
            )
        )
    return summary
