"""SLO alert plane: declarative rules evaluated over trace records.

Rules are evaluated *offline* over the telemetry record stream (the
in-memory list a :class:`~repro.telemetry.spans.Tracer` accumulates, or
the JSONL rows ``repro trace`` reads back).  Nothing here touches the
event loop, the RNG, or the wall clock — alert evaluation is a pure
function of the records, so firings are deterministic for a seeded run
and identical whether the trace was streamed to disk or kept in memory.

Three record sources feed rules, addressed by a ``source`` string:

* ``gauge:<name>`` — timestamped gauge samples (``type: sample`` rows);
  the value series is the signal.
* ``event:<name>`` — discrete occurrences (``type: event`` rows); the
  signal is the cumulative count (threshold rules) or the occurrence
  times themselves (burn-rate rules).
* ``span:<name>`` — span durations (``type: span`` rows), as a
  point-per-span series; with ``percentile`` set, the running
  percentile of all durations seen so far is the signal (so a rule like
  "verify p99 > 60s" fires at the span that pushes the percentile over).

Two rule kinds:

* ``threshold`` — pointwise comparison against ``threshold`` with
  ``op``; a firing opens at the first crossing point and resolves at
  the first non-crossing point (``resolved_at`` stays ``None`` when the
  condition still holds at end of trace).
* ``burn_rate`` — rolling-window budget burn over event occurrences:
  fires when more than ``budget`` matching events fall inside any
  ``window`` sim-seconds; resolves when enough events age out.

``group_by`` fans one rule out over label/attr values (e.g. per
tenant); ``labels`` is a subset filter applied before grouping.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

__all__ = [
    "AlertRule",
    "AlertFiring",
    "DEFAULT_RULES",
    "parse_rules",
    "load_rules",
    "evaluate",
    "firing_rows",
    "render_alerts",
]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
}

_SOURCE_KINDS = ("gauge", "event", "span")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert rule (see module docstring for semantics)."""

    name: str
    source: str  # "gauge:<name>" | "event:<name>" | "span:<name>"
    kind: str = "threshold"  # "threshold" | "burn_rate"
    op: str = ">="
    threshold: float = 1.0
    labels: tuple[tuple[str, str], ...] = ()
    group_by: tuple[str, ...] = ()
    window: float = 0.0  # burn_rate: rolling window, sim seconds
    budget: int = 0  # burn_rate: events allowed inside the window
    percentile: float | None = None  # span source: duration percentile
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        head, sep, tail = self.source.partition(":")
        if not sep or head not in _SOURCE_KINDS or not tail:
            raise ValueError(
                f"rule {self.name!r}: source must be "
                f"'gauge:<name>', 'event:<name>' or 'span:<name>', "
                f"got {self.source!r}"
            )
        if self.kind not in ("threshold", "burn_rate"):
            raise ValueError(f"rule {self.name!r}: unknown kind {self.kind!r}")
        if self.op not in _OPS:
            raise ValueError(f"rule {self.name!r}: unknown op {self.op!r}")
        if self.kind == "burn_rate":
            if head != "event":
                raise ValueError(
                    f"rule {self.name!r}: burn_rate rules need an event: source"
                )
            if self.window <= 0:
                raise ValueError(f"rule {self.name!r}: burn_rate needs window > 0")
        if self.percentile is not None and not 0.0 < self.percentile <= 1.0:
            raise ValueError(
                f"rule {self.name!r}: percentile must be in (0, 1]"
            )

    @property
    def source_kind(self) -> str:
        return self.source.partition(":")[0]

    @property
    def source_name(self) -> str:
        return self.source.partition(":")[2]


@dataclass
class AlertFiring:
    """One contiguous interval during which a rule's condition held."""

    rule: str
    severity: str
    group: tuple[tuple[str, str], ...] = ()
    fired_at: float = 0.0
    resolved_at: float | None = None  # None: still firing at end of trace
    value: float = 0.0  # signal value at the firing point
    peak: float = 0.0  # worst signal value while firing

    @property
    def group_label(self) -> str:
        if not self.group:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v in self.group) + "}"


#: Built-in rule set: the assurance signals the paper's operator story
#: cares about.  Every rule reads series the existing instrumentation
#: already emits; evaluating them adds nothing to the trace.
DEFAULT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        name="replica-suspicion",
        source="gauge:suspicion_suspects",
        op=">=",
        threshold=1.0,
        severity="warning",
        description="at least one node crossed the suspicion threshold",
    ),
    AlertRule(
        name="node-quarantine",
        source="gauge:nodes_quarantined",
        op=">=",
        threshold=1.0,
        severity="critical",
        description="scheduler quarantined a node",
    ),
    AlertRule(
        name="region-suspicion",
        source="gauge:region_suspicion",
        group_by=("region",),
        op=">=",
        threshold=0.5,
        severity="critical",
        description="a region's aggregate suspicion crossed 0.5",
    ),
    AlertRule(
        name="verification-timeout",
        source="event:verify.timeout",
        op=">=",
        threshold=1.0,
        severity="critical",
        description="a sub-graph verification deadline expired",
    ),
    AlertRule(
        name="node-crash",
        source="event:node.crashed",
        op=">=",
        threshold=1.0,
        severity="warning",
        description="a worker node crashed",
    ),
    AlertRule(
        name="verify-latency-p99",
        source="span:verify",
        percentile=0.99,
        op=">",
        threshold=60.0,
        severity="warning",
        description="p99 digest-verification latency above 60 sim-seconds",
    ),
    AlertRule(
        name="tenant-queue-depth",
        source="gauge:service_queue_depth",
        group_by=("tenant",),
        op=">=",
        threshold=4.0,
        severity="warning",
        description="a tenant's admission queue backed up past 4 jobs",
    ),
    AlertRule(
        name="admission-reject-burn",
        kind="burn_rate",
        source="event:audit.reject",
        group_by=("subject",),
        window=60.0,
        budget=0,
        severity="critical",
        description="more than 0 admission rejects within any 60s window",
    ),
)


# ----------------------------------------------------------------------
# rule parsing
# ----------------------------------------------------------------------


def parse_rules(data) -> list[AlertRule]:
    """Build rules from parsed JSON: a list, or ``{"rules": [...]}``."""
    if isinstance(data, dict):
        data = data.get("rules", [])
    if not isinstance(data, list):
        raise ValueError("alert rules must be a list or {'rules': [...]}")
    rules: list[AlertRule] = []
    for i, entry in enumerate(data):
        if not isinstance(entry, dict):
            raise ValueError(f"rule #{i} is not an object")
        unknown = set(entry) - {
            "name",
            "source",
            "kind",
            "op",
            "threshold",
            "labels",
            "group_by",
            "window",
            "budget",
            "percentile",
            "severity",
            "description",
        }
        if unknown:
            raise ValueError(f"rule #{i}: unknown keys {sorted(unknown)}")
        if "name" not in entry or "source" not in entry:
            raise ValueError(f"rule #{i}: 'name' and 'source' are required")
        labels = entry.get("labels", {})
        if not isinstance(labels, dict):
            raise ValueError(f"rule #{i}: 'labels' must be an object")
        rules.append(
            AlertRule(
                name=str(entry["name"]),
                source=str(entry["source"]),
                kind=str(entry.get("kind", "threshold")),
                op=str(entry.get("op", ">=")),
                threshold=float(entry.get("threshold", 1.0)),
                labels=tuple(sorted((str(k), str(v)) for k, v in labels.items())),
                group_by=tuple(str(g) for g in entry.get("group_by", ())),
                window=float(entry.get("window", 0.0)),
                budget=int(entry.get("budget", 0)),
                percentile=(
                    float(entry["percentile"])
                    if entry.get("percentile") is not None
                    else None
                ),
                severity=str(entry.get("severity", "warning")),
                description=str(entry.get("description", "")),
            )
        )
    names = [r.name for r in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ValueError(f"duplicate rule names: {dupes}")
    return rules


def load_rules(path: str) -> list[AlertRule]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_rules(json.load(handle))


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------


def _labels_of(record: dict) -> dict:
    """Label view of a record: sample labels, or event/span attrs."""
    if record.get("type") == "sample":
        return record.get("labels") or {}
    return record.get("attrs") or {}


def _matches(rule: AlertRule, labels: dict) -> bool:
    return all(str(labels.get(k)) == v for k, v in rule.labels)


def _group_key(rule: AlertRule, labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple((g, str(labels.get(g, ""))) for g in rule.group_by)


def _points(rule: AlertRule, records: list[dict]):
    """Signal points ``(group, ts, value)`` in record order.

    Record order *is* the deterministic order (the tracer appends in
    simulation order and JSONL preserves it), so no re-sorting is done
    here — ties at equal sim timestamps keep their emission order.
    """
    kind, name = rule.source_kind, rule.source_name
    if kind == "gauge":
        for record in records:
            if record.get("type") != "sample" or record.get("name") != name:
                continue
            labels = _labels_of(record)
            if not _matches(rule, labels):
                continue
            yield _group_key(rule, labels), record["ts"], float(record["value"])
    elif kind == "event":
        counts: dict[tuple, int] = {}
        for record in records:
            if record.get("type") != "event" or record.get("name") != name:
                continue
            labels = _labels_of(record)
            if not _matches(rule, labels):
                continue
            group = _group_key(rule, labels)
            counts[group] = counts.get(group, 0) + 1
            yield group, record["ts"], float(counts[group])
    else:  # span
        durations: dict[tuple, list[float]] = {}
        for record in records:
            if record.get("type") != "span" or record.get("name") != name:
                continue
            labels = _labels_of(record)
            if not _matches(rule, labels):
                continue
            group = _group_key(rule, labels)
            duration = float(record["end"]) - float(record["start"])
            if rule.percentile is None:
                yield group, record["end"], duration
            else:
                seen = durations.setdefault(group, [])
                seen.append(duration)
                ordered = sorted(seen)
                # Nearest-rank percentile: ceil(p * n), 1-indexed.
                rank = max(1, math.ceil(rule.percentile * len(ordered)))
                yield group, record["end"], ordered[rank - 1]


def _evaluate_threshold(rule: AlertRule, records: list[dict]) -> list[AlertFiring]:
    compare = _OPS[rule.op]
    open_firings: dict[tuple, AlertFiring] = {}
    firings: list[AlertFiring] = []
    for group, ts, value in _points(rule, records):
        firing = open_firings.get(group)
        if compare(value, rule.threshold):
            if firing is None:
                firing = AlertFiring(
                    rule=rule.name,
                    severity=rule.severity,
                    group=group,
                    fired_at=ts,
                    value=value,
                    peak=value,
                )
                open_firings[group] = firing
                firings.append(firing)
            else:
                firing.peak = max(firing.peak, value)
        elif firing is not None:
            firing.resolved_at = ts
            del open_firings[group]
    return firings


def _evaluate_burn_rate(rule: AlertRule, records: list[dict]) -> list[AlertFiring]:
    # Timeline of (ts, +1 arrival) and (ts + window, -1 expiry) deltas,
    # walked in time order (expiries before arrivals at equal ts, so a
    # window is half-open: (ts - window, ts]).
    arrivals: dict[tuple, list[float]] = {}
    for group, ts, _value in _points(rule, records):
        arrivals.setdefault(group, []).append(ts)
    firings: list[AlertFiring] = []
    for group in sorted(arrivals):
        timeline: list[tuple[float, int, int]] = []
        for ts in arrivals[group]:
            timeline.append((ts, 1, +1))  # arrivals after expiries on ties
            timeline.append((ts + rule.window, 0, -1))
        timeline.sort()
        active = 0
        firing: AlertFiring | None = None
        for ts, _order, delta in timeline:
            active += delta
            if firing is None and active > rule.budget:
                firing = AlertFiring(
                    rule=rule.name,
                    severity=rule.severity,
                    group=group,
                    fired_at=ts,
                    value=float(active),
                    peak=float(active),
                )
                firings.append(firing)
            elif firing is not None:
                if active > rule.budget:
                    firing.peak = max(firing.peak, float(active))
                else:
                    firing.resolved_at = ts
                    firing = None
    return firings


def evaluate(
    records: list[dict], rules: list[AlertRule] | tuple[AlertRule, ...] | None = None
) -> list[AlertFiring]:
    """Evaluate ``rules`` (default: :data:`DEFAULT_RULES`) over records.

    Returns firings sorted by ``(fired_at, rule name, group)`` — a total,
    deterministic order for a given record stream.
    """
    if rules is None:
        rules = DEFAULT_RULES
    firings: list[AlertFiring] = []
    for rule in rules:
        if rule.kind == "burn_rate":
            firings.extend(_evaluate_burn_rate(rule, records))
        else:
            firings.extend(_evaluate_threshold(rule, records))
    firings.sort(key=lambda f: (f.fired_at, f.rule, f.group))
    return firings


# ----------------------------------------------------------------------
# output
# ----------------------------------------------------------------------


def firing_rows(firings: list[AlertFiring]) -> list[dict]:
    """JSON-ready rows (stable key order via sort_keys at dump time)."""
    return [
        {
            "rule": f.rule,
            "severity": f.severity,
            "group": dict(f.group),
            "fired_at": f.fired_at,
            "resolved_at": f.resolved_at,
            "value": f.value,
            "peak": f.peak,
        }
        for f in firings
    ]


def render_alerts(
    firings: list[AlertFiring],
    rules: list[AlertRule] | tuple[AlertRule, ...] | None = None,
) -> str:
    """Deterministic plain-text alert summary."""
    if rules is None:
        rules = DEFAULT_RULES
    still = sum(1 for f in firings if f.resolved_at is None)
    resolved = len(firings) - still
    lines = [
        f"alerts: {still} firing, {resolved} resolved "
        f"({len(rules)} rules evaluated)"
    ]
    for f in firings:
        tail = (
            "still firing"
            if f.resolved_at is None
            else f"resolved at {f.resolved_at:.3f}s"
        )
        lines.append(
            f"  [{f.severity}] {f.rule}{f.group_label} "
            f"fired at {f.fired_at:.3f}s, {tail} "
            f"(value={f.value:g}, peak={f.peak:g})"
        )
    if not firings:
        lines.append("  (none fired)")
    return "\n".join(lines)
