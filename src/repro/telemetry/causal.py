"""Causal DAG reconstruction from a trace (``repro trace --causal``).

With causal tracing enabled (``Telemetry(causal=True)``), every
simulated message carries a paired ``net.send``/``net.recv`` (or
``digest.send``/``digest.recv``) event: the send event's trace id is
the message id, the recv event refers back to it via its ``mid``
attribute, and everything a handler records during delivery parents to
the recv event.  Together with ordinary span parentage that yields one
DAG per run — job submit → task dispatch → pre-prepare/prepare/commit →
digest cross-check → commit — that this module reconstructs:

* :class:`CausalGraph` — indexes the records, resolves message edges,
  finds orphans (records whose parent id never appears in the trace);
* :meth:`CausalGraph.commit_chains` — for every committed digest
  (``audit.commit``), the message-granular chain back to the run root,
  with per-replica digest-round slack and the critical (zero-slack)
  arrival marked;
* :meth:`CausalGraph.slowest_links` / :meth:`protocol_rounds` — which
  network link, and which protocol round, the time went to;
* :func:`to_chrome_flow` — the Chrome ``trace_event`` view with flow
  arrows (``ph: s/f``) binding each send to its delivery.

Everything here is derived from simulated-time record fields only, so
the analysis of a given trace is deterministic and byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.export import to_chrome_trace

#: Event names carrying a ``mid`` back-reference to their send event.
RECV_EVENTS = ("net.recv", "digest.recv")
SEND_EVENTS = ("net.send", "digest.send")

COMMIT_EVENT = "audit.commit"


@dataclass(frozen=True)
class Hop:
    """One step of a causal chain (root-first order)."""

    kind: str  # "span" | "event" | "message"
    ref: int  # trace record id
    name: str
    at: float  # span start / event ts (sim seconds)
    duration: float  # span duration, or message latency for "message"
    detail: str  # human label (node, sid, link, ...)

    def render(self) -> str:
        extra = f" [{self.duration:.6f}s]" if self.duration else ""
        detail = f" {self.detail}" if self.detail else ""
        return f"{self.name}{detail} @{self.at:.6f}{extra}"


@dataclass(frozen=True)
class RoundSlack:
    """One replica's digest arrival relative to the round's critical one."""

    replica: int
    arrival: float
    slack: float  # seconds the arrival could slip without delaying it
    critical: bool


@dataclass
class CommitChain:
    """The causal chain behind one committed digest."""

    sid: str
    committed_at: float
    hops: list[Hop] = field(default_factory=list)  # root-first
    round_slack: list[RoundSlack] = field(default_factory=list)
    complete: bool = False  # reaches a parentless root span
    missing: list[int] = field(default_factory=list)  # dangling parent ids

    @property
    def critical_link_seconds(self) -> float:
        return max(
            (hop.duration for hop in self.hops if hop.kind == "message"),
            default=0.0,
        )


@dataclass(frozen=True)
class LinkStat:
    """Aggregate latency of one directed network link."""

    sender: str
    receiver: str
    messages: int
    max_latency: float
    total_latency: float

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.messages if self.messages else 0.0


@dataclass(frozen=True)
class ProtocolRound:
    """One quorum round of same-kind protocol messages (e.g. all the
    Prepare messages of slot 4): its arrival spread is the slack the
    slowest message consumed."""

    kind: str
    seq: int
    messages: int
    first_arrival: float
    last_arrival: float

    @property
    def spread(self) -> float:
        return self.last_arrival - self.first_arrival


class CausalGraph:
    """Index of a trace's spans/events with message edges resolved."""

    def __init__(self, records: list[dict]) -> None:
        self.records = records
        #: id -> record, for every span and event.
        self.nodes: dict[int, dict] = {}
        #: recv event id -> send event id (``mid`` edges).
        self.message_edge: dict[int, int] = {}
        #: sid -> verify span records (register order).
        self._verify_by_sid: dict[str, list[dict]] = {}
        #: sid -> digest.recv event records.
        self._digest_recv_by_sid: dict[str, list[dict]] = {}
        self.commits: list[dict] = []
        self.span_count = 0
        self.event_count = 0
        for record in records:
            kind = record.get("type")
            if kind == "span":
                self.span_count += 1
            elif kind == "event":
                self.event_count += 1
            else:
                continue
            self.nodes[record["id"]] = record
            attrs = record.get("attrs") or {}
            name = record.get("name", "")
            if kind == "event" and name in RECV_EVENTS:
                mid = attrs.get("mid")
                if mid:
                    self.message_edge[record["id"]] = mid
                if name == "digest.recv" and attrs.get("sid"):
                    self._digest_recv_by_sid.setdefault(
                        attrs["sid"], []
                    ).append(record)
            elif kind == "span" and name == "verify" and attrs.get("sid"):
                self._verify_by_sid.setdefault(attrs["sid"], []).append(record)
            elif kind == "event" and name == COMMIT_EVENT:
                self.commits.append(record)

    # -- structural health ----------------------------------------------

    def orphans(self) -> list[int]:
        """Ids of records whose parent id never appears in the trace."""
        out = []
        for record_id in sorted(self.nodes):
            parent = self.nodes[record_id].get("parent")
            if parent and parent not in self.nodes:
                out.append(record_id)
        return out

    # -- chains ----------------------------------------------------------

    def _walk_parents(self, record: dict) -> tuple[list[Hop], bool, list[int]]:
        """Follow parent/message edges up to a root; returns root-first
        hops, whether a parentless root was reached, and any dangling
        parent ids encountered."""
        hops: list[Hop] = []
        missing: list[int] = []
        seen: set[int] = set()
        current: dict | None = record
        while current is not None:
            rid = current["id"]
            if rid in seen:
                break  # cycle guard (malformed trace)
            seen.add(rid)
            hops.append(_hop_for(current))
            send_id = self.message_edge.get(rid)
            if send_id is not None:
                send = self.nodes.get(send_id)
                if send is None:
                    missing.append(send_id)
                    return list(reversed(hops)), False, missing
                # Represent the network hop itself as a message hop.
                hops.append(
                    Hop(
                        kind="message",
                        ref=send_id,
                        name=current.get("name", "").replace(".recv", ""),
                        at=send.get("ts", 0.0),
                        duration=current.get("ts", 0.0) - send.get("ts", 0.0),
                        detail=_link_label(send),
                    )
                )
                current = send
                continue
            parent = current.get("parent")
            if not parent:
                return list(reversed(hops)), True, missing
            nxt = self.nodes.get(parent)
            if nxt is None:
                missing.append(parent)
                return list(reversed(hops)), False, missing
            current = nxt
        return list(reversed(hops)), False, missing

    def commit_chains(self) -> list[CommitChain]:
        """One chain per ``audit.commit``, joined to its verify span and
        the critical digest arrival, then walked to the run root."""
        chains: list[CommitChain] = []
        for commit in self.commits:
            sid = (commit.get("attrs") or {}).get("subject", "")
            committed_at = commit.get("ts", 0.0)
            chain = CommitChain(sid=sid, committed_at=committed_at)
            verify = self._verify_for(sid, committed_at)
            recvs = self._decisive_recvs(sid, verify)
            chain.round_slack = _round_slack(recvs)
            critical = recvs[-1] if recvs else None
            anchor = critical if critical is not None else verify
            if anchor is not None:
                hops, complete, missing = self._walk_parents(anchor)
                chain.hops = hops
                chain.complete = complete
                chain.missing = missing
            if verify is not None:
                chain.hops.append(_hop_for(verify))
            chain.hops.append(_hop_for(commit))
            chains.append(chain)
        return chains

    def _verify_for(self, sid: str, committed_at: float) -> dict | None:
        candidates = [
            span
            for span in self._verify_by_sid.get(sid, [])
            if span.get("start", 0.0) <= committed_at
        ]
        return candidates[-1] if candidates else None

    def _decisive_recvs(self, sid: str, verify: dict | None) -> list[dict]:
        """Digest arrivals that fed the verdict: the last recv per
        replica at or before the verify span's decision time, in arrival
        order (the final one is the critical arrival)."""
        deadline = verify.get("end") if verify is not None else None
        last_per_replica: dict[int, dict] = {}
        for recv in self._digest_recv_by_sid.get(sid, []):
            if deadline is not None and recv.get("ts", 0.0) > deadline:
                continue
            replica = (recv.get("attrs") or {}).get("replica", -1)
            last_per_replica[replica] = recv
        return sorted(
            last_per_replica.values(), key=lambda r: (r.get("ts", 0.0), r["id"])
        )

    # -- attribution ------------------------------------------------------

    def slowest_links(self, top: int = 8) -> list[LinkStat]:
        stats: dict[tuple[str, str], list[float]] = {}
        for recv_id, send_id in sorted(self.message_edge.items()):
            recv = self.nodes.get(recv_id)
            send = self.nodes.get(send_id)
            if recv is None or send is None:
                continue
            attrs = send.get("attrs") or {}
            sender = str(attrs.get("sender", attrs.get("node", "?")))
            receiver = str((recv.get("attrs") or {}).get("receiver", "trusted-tier"))
            stats.setdefault((sender, receiver), []).append(
                recv.get("ts", 0.0) - send.get("ts", 0.0)
            )
        links = [
            LinkStat(
                sender=sender,
                receiver=receiver,
                messages=len(latencies),
                max_latency=max(latencies),
                total_latency=sum(latencies),
            )
            for (sender, receiver), latencies in sorted(stats.items())
        ]
        links.sort(key=lambda link: (-link.max_latency, link.sender, link.receiver))
        return links[:top]

    def protocol_rounds(self) -> list[ProtocolRound]:
        """Quorum rounds of protocol messages grouped by (kind, seq)."""
        rounds: dict[tuple[str, int], list[float]] = {}
        for recv_id, send_id in sorted(self.message_edge.items()):
            recv = self.nodes.get(recv_id)
            send = self.nodes.get(send_id)
            if recv is None or send is None or recv.get("name") != "net.recv":
                continue
            attrs = send.get("attrs") or {}
            seq = attrs.get("seq")
            if seq is None:
                continue
            rounds.setdefault((attrs.get("kind", "?"), seq), []).append(
                recv.get("ts", 0.0)
            )
        return [
            ProtocolRound(
                kind=kind,
                seq=seq,
                messages=len(arrivals),
                first_arrival=min(arrivals),
                last_arrival=max(arrivals),
            )
            for (kind, seq), arrivals in sorted(rounds.items())
        ]


def _hop_for(record: dict) -> Hop:
    attrs = record.get("attrs") or {}
    if record.get("type") == "span":
        start = record.get("start", 0.0)
        end = record.get("end", start)
        detail = str(
            attrs.get("sid")
            or attrs.get("job_id")
            or attrs.get("script_id")
            or attrs.get("node")
            or ""
        )
        if record.get("name") == "task":
            detail = f"{attrs.get('kind', '?')}{attrs.get('index', '?')}@{attrs.get('node', '?')}"
        return Hop(
            kind="span",
            ref=record["id"],
            name=record.get("name", ""),
            at=start,
            duration=(end - start) if end is not None else 0.0,
            detail=detail,
        )
    detail = str(attrs.get("subject") or attrs.get("sid") or attrs.get("node") or "")
    return Hop(
        kind="event",
        ref=record["id"],
        name=record.get("name", ""),
        at=record.get("ts", 0.0),
        duration=0.0,
        detail=detail,
    )


def _link_label(send: dict) -> str:
    attrs = send.get("attrs") or {}
    sender = attrs.get("sender", attrs.get("node", "?"))
    receiver = attrs.get("receiver", "trusted-tier")
    return f"{sender}->{receiver}"


def _round_slack(recvs: list[dict]) -> list[RoundSlack]:
    if not recvs:
        return []
    critical_ts = recvs[-1].get("ts", 0.0)
    out = []
    for recv in recvs:
        arrival = recv.get("ts", 0.0)
        out.append(
            RoundSlack(
                replica=(recv.get("attrs") or {}).get("replica", -1),
                arrival=arrival,
                slack=critical_ts - arrival,
                critical=recv is recvs[-1],
            )
        )
    return out


def build_causal(records: list[dict]) -> CausalGraph:
    """Build the causal graph for a record stream."""
    return CausalGraph(records)


def render_causal(graph: CausalGraph, top_links: int = 8) -> str:
    """Deterministic text rendering of the causal analysis."""
    lines: list[str] = []
    orphans = graph.orphans()
    lines.append(
        f"causal graph: {graph.span_count} spans, {graph.event_count} events, "
        f"{len(graph.message_edge)} message edges, "
        f"{len(graph.commits)} commits, {len(orphans)} orphans"
    )
    if orphans:
        lines.append(
            "  ORPHANS (parent id missing from trace): "
            + ", ".join(str(i) for i in orphans[:16])
        )
    chains = graph.commit_chains()
    if chains:
        lines.append("")
        lines.append(f"commit chains ({len(chains)}):")
    for chain in chains:
        status = "complete" if chain.complete else (
            f"INCOMPLETE (missing ids: {chain.missing})"
        )
        lines.append(
            f"  {chain.sid} committed @{chain.committed_at:.6f} [{status}]"
        )
        lines.append(
            "    " + " -> ".join(hop.render() for hop in chain.hops)
        )
        if chain.round_slack:
            slack_text = "  ".join(
                f"r{s.replica} +{s.slack:.6f}" + ("*" if s.critical else "")
                for s in chain.round_slack
            )
            lines.append(f"    digest-round slack (*=critical): {slack_text}")
    links = graph.slowest_links(top=top_links)
    if links:
        lines.append("")
        lines.append("slowest links (by max latency):")
        for link in links:
            lines.append(
                f"  {link.sender} -> {link.receiver}: "
                f"max {link.max_latency:.6f}s mean {link.mean_latency:.6f}s "
                f"over {link.messages} message(s)"
            )
    rounds = graph.protocol_rounds()
    if rounds:
        lines.append("")
        lines.append("protocol rounds (arrival spread = round slack):")
        for rnd in rounds:
            lines.append(
                f"  {rnd.kind} seq={rnd.seq}: {rnd.messages} message(s), "
                f"spread {rnd.spread:.6f}s "
                f"[{rnd.first_arrival:.6f} .. {rnd.last_arrival:.6f}]"
            )
    return "\n".join(lines) + "\n"


def to_chrome_flow(records: list[dict]) -> dict:
    """Chrome ``trace_event`` document with causal flow arrows.

    The base document is :func:`~repro.telemetry.export.to_chrome_trace`;
    each send/recv pair additionally emits a flow-start (``ph: s``) at
    the send and a binding flow-finish (``ph: f``, ``bp: e``) at the
    delivery, so Perfetto draws the message arrows.
    """
    document = to_chrome_trace(records)
    graph = CausalGraph(records)
    flow_events: list[dict] = []
    for recv_id, send_id in sorted(graph.message_edge.items()):
        recv = graph.nodes.get(recv_id)
        send = graph.nodes.get(send_id)
        if recv is None or send is None:
            continue
        name = send.get("name", "flow")
        flow_events.append(
            {
                "ph": "s",
                "cat": "causal",
                "name": name,
                "id": send_id,
                "ts": send.get("ts", 0.0) * 1e6,
                "pid": 1,
                "tid": 0,
            }
        )
        flow_events.append(
            {
                "ph": "f",
                "bp": "e",
                "cat": "causal",
                "name": name,
                "id": send_id,
                "ts": recv.get("ts", 0.0) * 1e6,
                "pid": 1,
                "tid": 0,
            }
        )
    document["traceEvents"].extend(flow_events)
    return document
