"""Fault-isolation simulator (paper §6.3).

"We wrote a Java-based simulator that mimics resource allocation in a
250 node Hadoop cluster.  Each node is given 3 slots on which tasks can
be scheduled."  Jobs fall into three size categories — large (20–30
slots), medium (10–15), small (3–5) — mixed by a configurable ratio
(r1 = 6:3:1, r2 = 2:2:1), each with a random length in time units.

Every job is replicated (4 replicas for f = 1, 7 for f = 2, as in the
paper).  Replica clusters are placed on disjoint node sets; nodes host
at most one slot per job, which maximizes the number of job-cluster
intersections per node — the paper's overlap strategy.  Faulty nodes
produce a commission fault with probability ``commission_probability``
per job execution; the verifier identifies the faulty replica clusters
(given an f+1 correct quorum) and feeds them to the suspicion tracker
and the Fig. 7 fault analyzer.

Outputs map directly onto the paper's figures:

* :attr:`IsolationStats.jobs_at_saturation` — jobs completed when
  |D| = f (Fig. 11's y-axis);
* :attr:`IsolationStats.timeline` — per-time-unit Low/Med/High suspicion
  band counts (Fig. 12/13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import SimulationError
from repro.common.ids import NodeId
from repro.common.rng import RngRegistry, weighted_choice
from repro.core.fault_analyzer import FaultAnalyzer
from repro.core.gauges import publish_suspicion
from repro.core.suspicion import SuspicionTracker
from repro.telemetry import DISABLED, Telemetry

LARGE = "large"
MEDIUM = "medium"
SMALL = "small"

SLOT_RANGES = {LARGE: (20, 30), MEDIUM: (10, 15), SMALL: (3, 5)}

#: Paper ratios |large| : |medium| : |small|.
RATIO_R1 = (6, 3, 1)
RATIO_R2 = (2, 2, 1)


@dataclass
class SimJob:
    job_id: int
    category: str
    slots: int
    length: int
    started_at: int
    replicas: list[set[NodeId]] = field(default_factory=list)

    @property
    def finishes_at(self) -> int:
        return self.started_at + self.length


@dataclass
class TimelinePoint:
    time: int
    jobs_completed: int
    none: int
    low: int
    med: int
    high: int
    suspects: int
    disjoint_sets: int


@dataclass
class IsolationStats:
    """Everything the §6.3 figures need."""

    jobs_completed: int = 0
    jobs_at_saturation: int | None = None
    saturation_time: int | None = None
    timeline: list[TimelinePoint] = field(default_factory=list)
    final_suspects: set[NodeId] = field(default_factory=set)
    isolated_faults: list[NodeId] = field(default_factory=list)
    true_faulty: set[NodeId] = field(default_factory=set)

    @property
    def exact_isolation(self) -> bool:
        """Did the analyzer isolate exactly the true faulty nodes?"""
        return set(self.isolated_faults) == self.true_faulty


class IsolationSimulator:
    """Discrete-time resource-allocation and fault-isolation simulator."""

    def __init__(
        self,
        f: int = 1,
        num_nodes: int = 250,
        slots_per_node: int = 3,
        ratio: tuple[int, int, int] = RATIO_R1,
        commission_probability: float = 0.8,
        length_range: tuple[int, int] = (3, 10),
        replicas: int | None = None,
        num_faulty: int | None = None,
        seed: int = 63,
        overlap_strategy: str = "overlap",
        telemetry: Telemetry | None = None,
    ) -> None:
        if f < 1:
            raise SimulationError("f must be >= 1")
        self.f = f
        self.num_nodes = num_nodes
        self.slots_per_node = slots_per_node
        self.ratio = ratio
        self.commission_probability = commission_probability
        self.length_range = length_range
        # Paper: 4 replicas for f=1, 7 for f=2 (i.e. 3f+1).
        self.replicas = replicas if replicas is not None else 3 * f + 1
        if overlap_strategy not in ("overlap", "spread"):
            raise SimulationError(f"unknown overlap strategy: {overlap_strategy!r}")
        #: "overlap" (the paper's policy) packs job clusters onto busy
        #: nodes to maximize intersections; "spread" is the ablation
        #: baseline preferring idle nodes.
        self.overlap_strategy = overlap_strategy
        # Route through the registry so the isolation stream is derived
        # (SHA-256) from the seed rather than seeding module-level state
        # shapes; adding other streams later cannot perturb this one.
        self.rng = RngRegistry(seed).stream("isolation")

        self.nodes: list[NodeId] = [f"n{i:03d}" for i in range(num_nodes)]
        self.free_slots: dict[NodeId, int] = {
            node: slots_per_node for node in self.nodes
        }
        faulty_count = num_faulty if num_faulty is not None else f
        self.faulty_nodes: set[NodeId] = set(
            self.rng.sample(self.nodes, faulty_count)
        )

        self.suspicion = SuspicionTracker()
        self.analyzer = FaultAnalyzer(f=f)
        self.active_jobs: list[SimJob] = []
        self.jobs_completed = 0
        self._job_counter = 0
        self.time = 0
        # The discrete time counter is the telemetry clock: every gauge
        # sample/event is stamped with the simulated time unit, so the
        # Fig. 12/13 timelines come straight back out of the trace.
        self.telemetry = telemetry if telemetry is not None else DISABLED
        self.telemetry.bind_clock(lambda: float(self.time))

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------

    def _new_job(self) -> SimJob:
        category = weighted_choice(
            self.rng, [LARGE, MEDIUM, SMALL], list(self.ratio)
        )
        lo, hi = SLOT_RANGES[category]
        slots = self.rng.randint(lo, hi)
        length = self.rng.randint(*self.length_range)
        self._job_counter += 1
        return SimJob(
            job_id=self._job_counter,
            category=category,
            slots=slots,
            length=length,
            started_at=self.time,
        )

    def _try_allocate(self, job: SimJob) -> bool:
        """Place all replicas on disjoint node sets, one slot per node.

        Overlap strategy: candidate nodes are sorted to prefer nodes
        already hosting other jobs (more cluster intersections), with a
        shuffled tie-break.
        """
        used_by_job: set[NodeId] = set()
        replica_sets: list[set[NodeId]] = []
        for _ in range(self.replicas):
            candidates = [
                node
                for node in self.nodes
                if self.free_slots[node] > 0 and node not in used_by_job
            ]
            if len(candidates) < job.slots:
                return False
            self.rng.shuffle(candidates)
            # "overlap": busiest nodes (fewest free slots) first, giving
            # maximal cluster intersections; "spread": idle nodes first.
            candidates.sort(
                key=lambda node: self.free_slots[node],
                reverse=self.overlap_strategy == "spread",
            )
            chosen = set(candidates[: job.slots])
            replica_sets.append(chosen)
            used_by_job |= chosen
        for replica in replica_sets:
            for node in replica:
                self.free_slots[node] -= 1
        job.replicas = replica_sets
        return True

    def _complete_job(self, job: SimJob) -> None:
        self.jobs_completed += 1
        if self.telemetry.enabled:
            self.telemetry.tracer.emit(
                "sim_job",
                start=float(job.started_at),
                end=float(self.time),
                job_id=job.job_id,
                category=job.category,
                slots=job.slots,
                replicas=len(job.replicas),
            )
        faulty_replicas: list[set[NodeId]] = []
        for replica in job.replicas:
            self.suspicion.record_job(replica)
            fired = any(
                node in self.faulty_nodes
                and self.rng.random() < self.commission_probability
                for node in replica
            )
            if fired:
                faulty_replicas.append(replica)
            for node in replica:
                self.free_slots[node] += 1
        if faulty_replicas and self.telemetry.enabled:
            self.telemetry.tracer.event(
                "commission_fault",
                job_id=job.job_id,
                category=job.category,
                faulty_replicas=len(faulty_replicas),
                cluster_size=job.slots,
            )
        correct = self.replicas - len(faulty_replicas)
        if correct < self.f + 1:
            # No quorum: all clusters suspect, no attribution possible.
            for replica in job.replicas:
                self.suspicion.record_fault(replica)
            return
        for replica in faulty_replicas:
            cluster = set(replica)
            if self.analyzer.saturated:
                # After |D| = f no node outside ⋃D can be faulty: restrict
                # attribution to the surviving suspects (this is why the
                # paper's Fig. 12 suspect count stops growing).
                narrowed = cluster & self.analyzer.suspects()
                if narrowed:
                    cluster = narrowed
            self.suspicion.record_fault(cluster)
            self.analyzer.observe(set(replica))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one time unit: finish due jobs, backfill new ones."""
        self.time += 1
        finished = [job for job in self.active_jobs if job.finishes_at <= self.time]
        self.active_jobs = [
            job for job in self.active_jobs if job.finishes_at > self.time
        ]
        saturated_before = self.analyzer.saturated
        for job in finished:
            self._complete_job(job)
        if not saturated_before and self.analyzer.saturated:
            self._jobs_at_saturation = self.jobs_completed
            self._saturation_time = self.time
            if self.telemetry.enabled:
                self.telemetry.tracer.event(
                    "saturation",
                    jobs_completed=self.jobs_completed,
                    disjoint_sets=len(self.analyzer.disjoint),
                )
        # Backfill: keep the cluster busy.
        for _ in range(1000):
            job = self._new_job()
            if not self._try_allocate(job):
                self._job_counter -= 1
                break
            self.active_jobs.append(job)
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            publish_suspicion(metrics, self.suspicion, self.analyzer)
            metrics.gauge("sim_jobs_completed").set(self.jobs_completed)
            metrics.gauge("sim_active_jobs").set(len(self.active_jobs))

    _jobs_at_saturation: int | None = None
    _saturation_time: int | None = None

    def run(self, max_time: int = 150, stop_at_saturation: bool = False) -> IsolationStats:
        stats = IsolationStats(true_faulty=set(self.faulty_nodes))
        for _ in range(max_time):
            self.step()
            bands = self.suspicion.band_counts()
            stats.timeline.append(
                TimelinePoint(
                    time=self.time,
                    jobs_completed=self.jobs_completed,
                    none=bands["none"],
                    low=bands["low"],
                    med=bands["med"],
                    high=bands["high"],
                    suspects=len(self.suspicion.suspects()),
                    disjoint_sets=len(self.analyzer.disjoint),
                )
            )
            if stop_at_saturation and self.analyzer.saturated:
                break
        stats.jobs_completed = self.jobs_completed
        stats.jobs_at_saturation = self._jobs_at_saturation
        stats.saturation_time = self._saturation_time
        stats.final_suspects = self.suspicion.suspects()
        stats.isolated_faults = self.analyzer.isolated_faults()
        return stats


def jobs_to_isolation(
    f: int,
    ratio: tuple[int, int, int],
    commission_probability: float,
    trials: int = 5,
    max_time: int = 600,
    seed: int = 63,
) -> float:
    """Average jobs completed when |D| = f (one Fig. 11 data point).

    Trials that never saturate contribute their total completed jobs
    (a lower bound), matching the paper's bounded observation window.
    """
    total = 0.0
    for trial in range(trials):
        simulator = IsolationSimulator(
            f=f,
            ratio=ratio,
            commission_probability=commission_probability,
            seed=seed + 1000 * trial,
        )
        stats = simulator.run(max_time=max_time, stop_at_saturation=True)
        total += (
            stats.jobs_at_saturation
            if stats.jobs_at_saturation is not None
            else stats.jobs_completed
        )
    return total / trials
