"""The 250-node fault-isolation simulator of paper §6.3."""

from repro.isolation.simulator import (
    RATIO_R1,
    RATIO_R2,
    IsolationSimulator,
    IsolationStats,
    TimelinePoint,
    jobs_to_isolation,
)

__all__ = [
    "RATIO_R1",
    "RATIO_R2",
    "IsolationSimulator",
    "IsolationStats",
    "TimelinePoint",
    "jobs_to_isolation",
]
