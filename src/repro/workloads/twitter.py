"""Synthetic Twitter follower data-set (stand-in for Kwak et al. [22]).

The paper's data-set is two numeric columns, ``user-id`` and
``follower-id``.  What the two evaluation scripts exercise is the *skew*
of follower counts (group sizes for Follower Analysis, join fan-out for
Two-Hop Analysis), so users are sampled from a truncated Zipf — the
well-known shape of the real Twitter graph.
"""

from __future__ import annotations

import random

from repro.common.records import Record
from repro.common.rng import RngRegistry, zipf_sample


def follower_edges(
    num_edges: int,
    num_users: int = 1000,
    alpha: float = 1.1,
    empty_fraction: float = 0.02,
    rng: random.Random | None = None,
) -> list[Record]:
    """Generate ``(user_id, follower_id)`` edges.

    ``empty_fraction`` of records get a NULL follower — the "empty
    records" the Follower Analysis script filters out.
    """
    rng = rng if rng is not None else RngRegistry(22).stream("workload/twitter")
    edges: list[Record] = []
    for _ in range(num_edges):
        user = zipf_sample(rng, num_users, alpha)
        if rng.random() < empty_fraction:
            edges.append(Record((user, None)))
            continue
        follower = rng.randint(1, num_users)
        while follower == user:
            follower = rng.randint(1, num_users)
        edges.append(Record((user, follower)))
    return edges


#: Paper §6.1 script 1: "counts the number of followers for each user.
#: It loads the data, filters out empty records, groups the record by
#: user-id, calculates the counts and saves".
FOLLOWER_ANALYSIS = """
edges   = LOAD 'twitter/followers' AS (user:int, follower:int);
clean   = FILTER edges BY follower IS NOT NULL;
grouped = GROUP clean BY user;
counts  = FOREACH grouped GENERATE group AS user, COUNT(clean) AS followers;
STORE counts INTO 'twitter/follower_counts';
"""

#: Paper §6.1 script 2: "lists pairs of users that are two hops away
#: from one another.  This job does a self-join that matches one user
#: with all its follower's followers."
TWO_HOP_ANALYSIS = """
a        = LOAD 'twitter/followers' AS (user:int, follower:int);
b        = LOAD 'twitter/followers' AS (user:int, follower:int);
clean    = FILTER b BY follower IS NOT NULL;
joined   = JOIN a BY user, clean BY follower;
pairs    = FOREACH joined GENERATE a::follower AS src, clean::user AS dst;
uniq     = DISTINCT pairs;
STORE uniq INTO 'twitter/two_hop_pairs';
"""
