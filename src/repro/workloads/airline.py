"""Synthetic RITA on-time-performance data (stand-in for [2]).

Paper §6.2 runs "a multi-store query ... that finds the top 20 airports
with respect to incoming flights, outgoing flights, and overall" over a
1.3 GB RITA subset.  The query's cost structure depends on airport
frequency skew (hub-and-spoke), reproduced with a Zipf over airports.
"""

from __future__ import annotations

import random

from repro.common.records import Record
from repro.common.rng import RngRegistry, zipf_sample

#: A realistic airport code pool (IATA-like three-letter codes).
AIRPORTS = [
    "ATL", "ORD", "DFW", "LAX", "PHX", "DEN", "IAH", "LAS", "DTW", "MSP",
    "EWR", "SLC", "CLT", "SFO", "MCO", "PHL", "SEA", "BOS", "LGA", "JFK",
    "CVG", "BWI", "MIA", "TPA", "SAN", "MDW", "DCA", "STL", "PDX", "FLL",
    "HNL", "OAK", "MEM", "CLE", "SMF", "SJC", "MCI", "IAD", "RDU", "SAT",
    "MKE", "BNA", "SNA", "AUS", "PIT", "IND", "ABQ", "CMH", "ONT", "BUR",
    "JAX", "BUF", "OMA", "ANC", "TUS", "PBI", "OKC", "RNO", "TUL", "BDL",
]

CARRIERS = ["WN", "AA", "DL", "UA", "US", "NW", "CO", "MQ", "OO", "XE"]


def flight_records(
    num_flights: int,
    alpha: float = 0.9,
    cancelled_fraction: float = 0.02,
    rng: random.Random | None = None,
) -> list[Record]:
    """Generate flight records:
    (year, month, day, carrier, origin, dest, dep_delay, arr_delay, cancelled).
    """
    rng = rng if rng is not None else RngRegistry(2).stream("workload/airline")
    records: list[Record] = []
    n = len(AIRPORTS)
    for _ in range(num_flights):
        origin = AIRPORTS[zipf_sample(rng, n, alpha) - 1]
        dest = AIRPORTS[zipf_sample(rng, n, alpha) - 1]
        while dest == origin:
            dest = AIRPORTS[zipf_sample(rng, n, alpha) - 1]
        cancelled = rng.random() < cancelled_fraction
        dep_delay = 0 if cancelled else max(-10, int(rng.gauss(8, 25)))
        arr_delay = 0 if cancelled else dep_delay + int(rng.gauss(0, 12))
        records.append(
            Record(
                (
                    rng.randint(2006, 2008),
                    rng.randint(1, 12),
                    rng.randint(1, 28),
                    rng.choice(CARRIERS),
                    origin,
                    dest,
                    dep_delay,
                    arr_delay,
                    1 if cancelled else 0,
                )
            )
        )
    return records


#: Paper §6.2 (and Fig. 8 (iii)): the multi-store top-20-airports query.
#: Three stores: outbound, inbound, and overall traffic.
TOP_AIRPORTS = """
flights  = LOAD 'airline/flights' AS (year:int, month:int, day:int,
            carrier:chararray, origin:chararray, dest:chararray,
            dep_delay:int, arr_delay:int, cancelled:int);
flown    = FILTER flights BY cancelled == 0;

by_orig  = GROUP flown BY origin;
out_cnt  = FOREACH by_orig GENERATE group AS airport, COUNT(flown) AS flights;
out_ord  = ORDER out_cnt BY flights DESC;
out_top  = LIMIT out_ord 20;
STORE out_top INTO 'airline/top_outbound';

by_dest  = GROUP flown BY dest;
in_cnt   = FOREACH by_dest GENERATE group AS airport, COUNT(flown) AS flights;
in_ord   = ORDER in_cnt BY flights DESC;
in_top   = LIMIT in_ord 20;
STORE in_top INTO 'airline/top_inbound';

all_cnt  = UNION out_cnt, in_cnt;
by_all   = GROUP all_cnt BY airport;
tot_cnt  = FOREACH by_all GENERATE group AS airport, SUM(all_cnt.flights) AS flights;
tot_ord  = ORDER tot_cnt BY flights DESC;
tot_top  = LIMIT tot_ord 20;
STORE tot_top INTO 'airline/top_overall';
"""
