"""Synthetic workloads standing in for the paper's three data-sets,
plus the corresponding Pig Latin evaluation scripts."""

from repro.workloads.airline import TOP_AIRPORTS, flight_records
from repro.workloads.twitter import (
    FOLLOWER_ANALYSIS,
    TWO_HOP_ANALYSIS,
    follower_edges,
)
from repro.workloads.weather import AVERAGE_TEMPERATURE, daily_temperatures

__all__ = [
    "AVERAGE_TEMPERATURE",
    "FOLLOWER_ANALYSIS",
    "TOP_AIRPORTS",
    "TWO_HOP_ANALYSIS",
    "daily_temperatures",
    "flight_records",
    "follower_edges",
]
