"""Synthetic Daily Surface Summary of Day weather data (NCDC [26]).

Paper §6.4 uses a 640 MB GSOD subset: "finding average temperature over
multiple years for each weather station followed by counting the number
of stations with the same average".  Station temperatures are modelled
as a per-station climate mean plus seasonal and daily noise; averages
are truncated (paper §5.4's determinism workaround) before the second
grouping so replicas agree bit-for-bit.
"""

from __future__ import annotations

import math
import random

from repro.common.records import Record
from repro.common.rng import RngRegistry


def station_ids(num_stations: int) -> list[str]:
    return [f"STN{index:05d}" for index in range(num_stations)]


def daily_temperatures(
    num_stations: int,
    readings_per_station: int,
    start_year: int = 2005,
    rng: random.Random | None = None,
) -> list[Record]:
    """Generate ``(station, year, day_of_year, temp_f)`` records."""
    rng = rng if rng is not None else RngRegistry(26).stream("workload/weather")
    records: list[Record] = []
    for station in station_ids(num_stations):
        climate_mean = rng.uniform(20.0, 80.0)  # Fahrenheit
        seasonal_amp = rng.uniform(5.0, 30.0)
        for reading in range(readings_per_station):
            year = start_year + reading // 365
            day = reading % 365
            seasonal = seasonal_amp * math.sin(2 * math.pi * day / 365)
            noise = rng.gauss(0, 4)
            temp = round(climate_mean + seasonal + noise, 1)
            records.append(Record((station, year, day, temp)))
    return records


#: Paper §6.4 script: average temperature per station, then a histogram
#: of stations per (truncated) average.
AVERAGE_TEMPERATURE = """
readings = LOAD 'weather/daily' AS (station:chararray, year:int,
            day:int, temp:double);
valid    = FILTER readings BY temp IS NOT NULL;
by_stn   = GROUP valid BY station;
averages = FOREACH by_stn GENERATE group AS station,
            TRUNC(AVG(valid.temp), 0) AS avg_temp;
by_avg   = GROUP averages BY avg_temp;
histo    = FOREACH by_avg GENERATE group AS avg_temp,
            COUNT(averages) AS stations;
STORE histo INTO 'weather/avg_histogram';
"""
