#!/usr/bin/env python3
"""Plan optimization walkthrough: rewrite rules before replication.

Shows the optimizer's rules firing on a naively-written script — the
filter lands after the self-join — and measures what the rewrite saves
once the job is replicated 4-way (every shuffled byte is paid r times).

Run:  python examples/plan_optimizer.py
"""

from repro import ClusterBFTConfig, ClusterConfig, ClusterBFTController, SystemConfig
from repro.dataflow.optimizer import optimize
from repro.workloads import follower_edges

NAIVE_SCRIPT = """
a      = LOAD 'twitter/followers' AS (user:int, follower:int);
b      = LOAD 'twitter/followers' AS (user:int, follower:int);
clean  = FILTER b BY follower IS NOT NULL;
joined = JOIN a BY user, clean BY follower;
vips   = FILTER joined BY a::user > 500;
pairs  = FOREACH vips GENERATE a::follower AS src, clean::user AS dst;
STORE pairs INTO 'twitter/vip_two_hop';
"""


def controller_for(records):
    config = SystemConfig(
        cluster=ClusterConfig(num_nodes=24, slots_per_node=3, heartbeat_period=0.2),
        bft=ClusterBFTConfig(f=1, replication=4, verification_points=1),
    )
    controller = ClusterBFTController(config, block_bytes=128 * 1024)
    controller.load_input("twitter/followers", records)
    return controller


def main() -> None:
    records = follower_edges(6_000, num_users=500)

    controller = controller_for(records)
    plan = controller._to_plan(NAIVE_SCRIPT)
    print("Naive plan:")
    print(plan.describe())

    report = optimize(plan)
    print(f"\nOptimizer rules fired: {report.applied}")
    print("\nOptimized plan (filter now sits on the join input):")
    print(plan.describe())

    naive = controller_for(records).run_assured(NAIVE_SCRIPT)
    optimized = controller_for(records).run_assured(plan)
    assert optimized.assured and naive.assured

    def fields(outputs):
        return {
            path: sorted((r.fields for r in recs), key=repr)
            for path, recs in outputs.items()
        }

    assert fields(optimized.outputs) == fields(naive.outputs)
    print("\nBoth executions verified with identical outputs.")
    print(f"{'':16}{'naive':>12}{'optimized':>12}")
    print(f"{'latency (s)':16}{naive.latency:>12.2f}{optimized.latency:>12.2f}")
    print(
        f"{'shuffle bytes':16}{naive.metrics.file_write:>12,}"
        f"{optimized.metrics.file_write:>12,}"
    )
    saving = 1 - optimized.metrics.file_write / naive.metrics.file_write
    print(f"\nreplicated shuffle saved: {saving:.0%}")


if __name__ == "__main__":
    main()
