#!/usr/bin/env python3
"""Fault tolerance walkthrough: the airline multi-store query under a
Byzantine node (paper §6.2 scenario).

One worker node always produces commission failures — it silently
corrupts every record stream it touches.  The example shows:

1. an unreplicated run silently returns wrong results,
2. ClusterBFT masks the fault (f+1 digest quorum picks the correct
   replicas) and the verified output matches a clean run,
3. the faulty replica chain is attributed and the node accumulates
   suspicion; with minimal replication (r = f+1) the script is rerun
   with an escalated replication degree, reusing verified sub-graphs.

Run:  python examples/airline_fault_tolerance.py
"""

from repro import ClusterBFTConfig, ClusterConfig, ClusterBFTController, SystemConfig
from repro.faults import single_commission
from repro.workloads import TOP_AIRPORTS, flight_records

FAULTY_NODE = "node_0000"


def deployment(replication: int) -> SystemConfig:
    return SystemConfig(
        cluster=ClusterConfig(num_nodes=24, slots_per_node=3, heartbeat_period=0.2),
        bft=ClusterBFTConfig(
            f=1,
            replication=replication,
            verification_points=2,
            verifier_timeout=30.0,
        ),
    )


def main() -> None:
    records = flight_records(25_000)

    print("=== 1. Ground truth (clean cluster, no replication) ===")
    clean = ClusterBFTController(deployment(4), block_bytes=128 * 1024)
    clean.load_input("airline/flights", records)
    truth = clean.run_plain(TOP_AIRPORTS)
    top = truth.outputs["airline/top_overall"][:3]
    print(f"top airports overall: {[(r[0], r[1]) for r in top]}")

    print(f"\n=== 2. Unreplicated run with {FAULTY_NODE} Byzantine ===")
    unsafe = ClusterBFTController(
        deployment(4), fault_plan=single_commission(FAULTY_NODE), block_bytes=128 * 1024
    )
    unsafe.load_input("airline/flights", records)
    corrupted = unsafe.run_plain(TOP_AIRPORTS)
    same = corrupted.outputs == truth.outputs
    print(f"output matches ground truth: {same}  <- silent corruption!"
          if not same else "faulty node happened to stay idle this run")

    print("\n=== 3. ClusterBFT with r = 4 masks the fault ===")
    assured = ClusterBFTController(
        deployment(4), fault_plan=single_commission(FAULTY_NODE), block_bytes=128 * 1024
    )
    assured.load_input("airline/flights", records)
    result = assured.run_assured(TOP_AIRPORTS)
    print(f"assured: {result.assured}, attempts: {result.attempts}, "
          f"latency {result.latency:.2f}s")
    print(f"output matches ground truth: {result.outputs == truth.outputs}")
    for outcome in result.outcomes:
        losers = [(f.replica, f.kind) for f in outcome.faults]
        print(f"  {outcome.sid}: {outcome.status}, losers {losers}")
    suspects = sorted(assured.suspicion.suspects())
    print(f"suspicion now covers: {suspects}")
    print(f"fault analyzer: {assured.fault_analyzer.describe()}")

    print("\n=== 4. Optimistic replication (r = f+1 = 2): rerun on fault ===")
    optimistic = ClusterBFTController(
        deployment(2), fault_plan=single_commission(FAULTY_NODE), block_bytes=128 * 1024
    )
    optimistic.load_input("airline/flights", records)
    result = optimistic.run_assured(TOP_AIRPORTS)
    print(f"assured: {result.assured}, attempts: {result.attempts}, "
          f"jobs reused across reruns: {result.reused_jobs}")
    print(f"output matches ground truth: {result.outputs == truth.outputs}")


if __name__ == "__main__":
    main()
