#!/usr/bin/env python3
"""Quickstart: assured execution of a Pig-style script with ClusterBFT.

Loads a synthetic Twitter follower data-set into the trusted store,
submits the paper's Follower Analysis script, and prints the verified
result alongside the verification summary.

Run:  python examples/quickstart.py [--trace out.jsonl]
"""

import sys

from repro import ClusterBFTController, SystemConfig
from repro.telemetry import Telemetry
from repro.workloads import FOLLOWER_ANALYSIS, follower_edges


def main() -> None:
    trace_path = None
    if "--trace" in sys.argv:
        trace_path = sys.argv[sys.argv.index("--trace") + 1]

    # A simulated deployment: 32 untrusted worker nodes, 3 task slots
    # each, ClusterBFT defaults (f=1, r=3f+1=4, 1 marker-selected
    # verification point plus the mandatory output digests).
    telemetry = Telemetry.recording() if trace_path else None
    controller = ClusterBFTController(SystemConfig(), telemetry=telemetry)

    print("Staging 20,000 follower edges into the trusted DFS...")
    controller.load_input("twitter/followers", follower_edges(20_000))

    print("Script under execution:")
    print(FOLLOWER_ANALYSIS)

    result = controller.run_assured(FOLLOWER_ANALYSIS)

    print(f"assured      : {result.assured}")
    print(f"latency      : {result.latency:.2f} simulated seconds")
    print(f"attempts     : {result.attempts}")
    print(f"jobs executed: {result.metrics.jobs} (all replicas)")
    print(f"digest bytes : {result.metrics.digest_bytes:,}")
    print(f"comparisons  : {result.metrics.verification_comparisons}")

    print("\nVerification outcomes:")
    for outcome in result.outcomes:
        print(
            f"  {outcome.sid}: {outcome.status}, "
            f"winning replicas {sorted(outcome.winners)}"
        )

    counts = result.outputs["twitter/follower_counts"]
    top = sorted(counts, key=lambda r: r[1], reverse=True)[:5]
    print("\nTop-5 most-followed users (user, followers):")
    for record in top:
        print(f"  user {record[0]:>5}: {record[1]} followers")

    if telemetry is not None:
        written = telemetry.write_jsonl(trace_path)
        print(f"\ntrace: {written} records written to {trace_path}")
        print(f"summarize with: python -m repro trace {trace_path}")


if __name__ == "__main__":
    main()
