-- Paper §6.1 script 1: Twitter Follower Analysis.
-- Counts the number of followers per user after filtering out empty
-- records.  Kept as a standalone script so the CI plan checker
-- (`repro lint --plan`) gates a real artifact; identical to
-- repro.workloads.FOLLOWER_ANALYSIS.
edges   = LOAD 'twitter/followers' AS (user:int, follower:int);
clean   = FILTER edges BY follower IS NOT NULL;
grouped = GROUP clean BY user;
counts  = FOREACH grouped GENERATE group AS user, COUNT(clean) AS followers;
STORE counts INTO 'twitter/follower_counts';
