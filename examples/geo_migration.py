"""Online replica-set migration across regions, end to end.

A three-region cluster ("slow" runs at half speed and hosts a
persistent equivocator) executes an assured group-count.  Replicated
digests disagree, per-region suspicion crosses the configured
threshold mid-run, and the controller migrates the implicated regions
out: a synced ``reconfig`` WAL record, quarantined members, evacuated
in-flight tasks — while the run still ends assured.  See DESIGN.md
section 13.

``repro run`` has no region flags, so CI's geo kill-and-resume job
drives this script instead::

    python examples/geo_migration.py run ref.wal ref.json
    python examples/geo_migration.py reconfig-seq ref.wal   # -> seq
    REPRO_JOURNAL_KILL_AT=<seq> python examples/geo_migration.py run crash.wal
    python examples/geo_migration.py resume crash.wal resumed.json

With ``REPRO_JOURNAL_KILL_AT`` set the process SIGKILLs itself right
after that journal record becomes durable — crashing immediately after
the migration decision — and ``resume`` must replay into the same
placement and byte-identical outputs.
"""

import json
import sys

from repro.cli import _env_kill_hook
from repro.common.config import ClusterBFTConfig, ClusterConfig, SystemConfig
from repro.common.records import encode_record, records_from_rows
from repro.core import journal as wal
from repro.core.audit import RECONFIG
from repro.core.controller import ClusterBFTController
from repro.core.recovery import resume_run
from repro.faults.behaviors import EquivocateBehavior
from repro.faults.injection import FaultPlan

SCRIPT = """
A = LOAD 'in' AS (k:int, v:int);
B = FILTER A BY v IS NOT NULL;
G = GROUP B BY k;
C = FOREACH G GENERATE group AS k, COUNT(B) AS n;
STORE C INTO 'out';
"""

ROWS = [(i % 8, (i * 13) % 997) for i in range(320)]


def config():
    return SystemConfig(
        cluster=ClusterConfig(
            num_nodes=12,
            slots_per_node=3,
            heartbeat_period=0.4,
            regions=(("east", 4, 1.0), ("west", 4, 1.0), ("slow", 4, 0.5)),
            wan_latency_seconds=0.25,
        ),
        bft=ClusterBFTConfig(
            f=1,
            replication=4,
            verification_points=1,
            region_suspicion_threshold=0.2,
            region_min_jobs=2,
        ),
        seed=20131210,
    )


def fault_plan():
    plan = FaultPlan()
    plan.assign("node_0008", EquivocateBehavior(probability=1.0))
    return plan


def dump_outputs(path, outputs):
    canonical = {
        store: [encode_record(record).decode("utf-8") for record in records]
        for store, records in sorted(outputs.items())
    }
    with open(path, "w") as handle:
        json.dump(canonical, handle, sort_keys=True)
        handle.write("\n")


def run(wal_path, outputs_path=None):
    system = config()
    journal = wal.Journal.create(
        wal_path,
        system,
        SCRIPT,
        {"in": records_from_rows(ROWS)},
        block_bytes=2048,
        crash_hook=_env_kill_hook(),
    )
    controller = ClusterBFTController(
        system, fault_plan=fault_plan(), block_bytes=2048, journal=journal
    )
    controller.load_input("in", records_from_rows(ROWS))
    result = controller.run_assured(SCRIPT)
    migrated = [e.subject for e in controller.audit.events(kind=RECONFIG)]
    print(
        f"assured={result.assured} latency={result.latency:.3f} "
        f"migrated={','.join(migrated) or '-'}"
    )
    if not migrated:
        raise SystemExit("expected a mid-run migration; none happened")
    if outputs_path:
        dump_outputs(outputs_path, result.outputs)


def reconfig_seq(wal_path):
    records, _ = wal.read_journal(wal_path)
    print(next(r["seq"] for r in records if r["kind"] == wal.RECONFIG))


def resume(wal_path, outputs_path):
    recovered = resume_run(wal_path, fault_plan=fault_plan())
    print(f"resumed assured={recovered.result.assured}")
    dump_outputs(outputs_path, recovered.result.outputs)


def main(argv):
    if len(argv) < 3:
        raise SystemExit(__doc__)
    mode, wal_path = argv[1], argv[2]
    if mode == "run":
        run(wal_path, argv[3] if len(argv) > 3 else None)
    elif mode == "reconfig-seq":
        reconfig_seq(wal_path)
    elif mode == "resume":
        resume(wal_path, argv[3])
    else:
        raise SystemExit(f"unknown mode {mode!r}")


if __name__ == "__main__":
    main(sys.argv)
