#!/usr/bin/env python3
"""§6.4 end to end: BFT-replicated control tier + digest granularity.

Drops the implicit-trust assumption for the request handler: script
submissions are ordered through 3f+1 PBFT replicas before execution
starts.  Then sweeps the approximation-accuracy knob ``d`` (records per
digest chunk) on the weather average-temperature script and reports the
latency trade-off the paper's Fig. 14 measures.

Run:  python examples/weather_bft_frontend.py
"""


from repro import ClusterBFTConfig, ClusterConfig, ClusterBFTController, SystemConfig
from repro.workloads import AVERAGE_TEMPERATURE, daily_temperatures


def controller_with_chunk(chunk: int, records) -> ClusterBFTController:
    config = SystemConfig(
        cluster=ClusterConfig(num_nodes=24, slots_per_node=3, heartbeat_period=0.2),
        bft=ClusterBFTConfig(
            f=1,
            replication=4,
            verification_points=2,
            digest_chunk_records=chunk,
        ),
    )
    controller = ClusterBFTController(
        config, block_bytes=128 * 1024, replicate_frontend=True
    )
    controller.load_input("weather/daily", records)
    return controller


def main() -> None:
    records = daily_temperatures(150, 50)
    print(f"weather readings: {len(records)} across 150 stations")

    print("\nPBFT request-handler replication is active: each script")
    print("submission costs one consensus round before any task runs.\n")

    header = f"{'d (records/digest)':>20} {'latency (s)':>12} {'digests compared':>18}"
    print(header)
    print("-" * len(header))
    for chunk in (0, 10_000, 1_000, 100):
        controller = controller_with_chunk(chunk, records)
        result = controller.run_assured(AVERAGE_TEMPERATURE)
        assert result.assured
        label = "whole stream" if chunk == 0 else str(chunk)
        print(
            f"{label:>20} {result.latency:>12.2f} "
            f"{result.metrics.verification_comparisons:>18}"
        )

    controller = controller_with_chunk(0, records)
    frontend = controller.frontend
    print(
        f"\ncontrol tier: {len(frontend.replicas)} PBFT replicas, "
        f"view {frontend.replicas[0].view}, "
        f"{frontend.network.messages_delivered} protocol messages so far"
    )
    histogram = controller.run_assured(AVERAGE_TEMPERATURE).outputs[
        "weather/avg_histogram"
    ]
    busiest = sorted(histogram, key=lambda r: r[1], reverse=True)[:5]
    print("\nMost common average temperatures (°F, stations):")
    for record in busiest:
        print(f"  {record[0]:>6}: {record[1]} stations")


if __name__ == "__main__":
    main()
