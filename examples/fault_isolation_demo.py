#!/usr/bin/env python3
"""Fault isolation at cluster scale (paper §6.3 scenario).

Runs the 250-node isolation simulator with two stealthy commission-
faulty nodes (f = 2, 7 replicas per job) and narrates how the Fig. 7
fault analyzer narrows suspicion: disjoint faulty sets accumulate until
|D| = f, then intersections shrink each set — ideally to single nodes.

Run:  python examples/fault_isolation_demo.py
"""

from repro.isolation import IsolationSimulator


def bar(count: int, scale: float = 1.0, char: str = "#") -> str:
    return char * max(int(count * scale), 0)


def main() -> None:
    simulator = IsolationSimulator(
        f=2,
        commission_probability=0.6,
        seed=29,
    )
    print(
        f"cluster: {simulator.num_nodes} nodes x {simulator.slots_per_node} slots, "
        f"{simulator.replicas} replicas/job"
    )
    print(f"hidden faulty nodes: {sorted(simulator.faulty_nodes)}\n")

    print(f"{'t':>4} {'jobs':>5} {'|D|':>4} {'suspects':>8}  suspicion histogram")
    stats = None
    for step in range(120):
        simulator.step()
        if simulator.time % 10 == 0:
            bands = simulator.suspicion.band_counts()
            print(
                f"{simulator.time:>4} {simulator.jobs_completed:>5} "
                f"{len(simulator.analyzer.disjoint):>4} "
                f"{len(simulator.suspicion.suspects()):>8}  "
                f"L[{bar(bands['low'])}] M[{bar(bands['med'])}] "
                f"H[{bar(bands['high'])}]"
            )
        if simulator.analyzer.saturated and all(
            len(s) == 1 for s in simulator.analyzer.disjoint
        ):
            print(f"\nexact isolation reached at t={simulator.time}, "
                  f"{simulator.jobs_completed} jobs completed")
            break

    isolated = simulator.analyzer.isolated_faults()
    print(f"\nanalyzer verdict : {simulator.analyzer.describe()}")
    print(f"isolated faults  : {isolated}")
    print(f"actually faulty  : {sorted(simulator.faulty_nodes)}")
    print(f"exact match      : {set(isolated) == simulator.faulty_nodes}")

    print("\nOperator action (paper §4.2): evict, re-image, re-insert.")
    for node in isolated:
        print(f"  {node}: suspicion {simulator.suspicion.level(node):.2f} -> evict")


if __name__ == "__main__":
    main()
