#!/usr/bin/env python3
"""Inside the pipeline: plan, marker function, job graph, digest points.

Uses the two Twitter scripts (paper §6.1) to show what ClusterBFT's
control tier does with a script before any task runs: the logical plan,
the input-ratio annotations, the marker function's verification-point
choices, the instrumented plan, and the compiled MapReduce job graph.

Run:  python examples/twitter_analysis.py
"""

from repro import ClusterBFTConfig, ClusterBFTController, SystemConfig
from repro.core.graph_analyzer import input_ratios
from repro.core.request_handler import RequestHandler, output_coverage
from repro.workloads import FOLLOWER_ANALYSIS, TWO_HOP_ANALYSIS, follower_edges


def walk_through(name: str, script: str, controller: ClusterBFTController) -> None:
    print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
    plan = controller._to_plan(script)
    print("\nLogical plan:")
    print(plan.describe())

    sizes = controller._input_sizes(plan)
    ratios = input_ratios(plan, sizes)
    print("\nInput ratios (paper Fig. 5) per vertex:")
    for vid in plan.topological_order():
        print(f"  [{vid}] {plan.op(vid).describe():<28} ir={ratios.get(vid, 0):.3f}")

    handler = RequestHandler(ClusterBFTConfig(verification_points=2))
    prepared = handler.prepare(script, sizes)
    print("\nMarker function picked verification points at:")
    for vid, score in zip(prepared.marked_vertices, prepared.marker_scores):
        print(f"  [{vid}] {prepared.plan.op(vid).describe()} (score {score:.2f})")

    print("\nCompiled MapReduce job graph:")
    print(prepared.job_graph.describe())
    print("\nPer-job verification coverage:")
    for index, job in enumerate(prepared.job_graph.jobs):
        vp = output_coverage(job)
        print(f"  #{index} {job.name:<28} output covered by: {vp or '—'}")


def main() -> None:
    controller = ClusterBFTController(SystemConfig())
    controller.load_input("twitter/followers", follower_edges(10_000, num_users=500))

    walk_through("Twitter Follower Analysis", FOLLOWER_ANALYSIS, controller)
    walk_through("Twitter Two-Hop Analysis", TWO_HOP_ANALYSIS, controller)

    print("\nExecuting both, assured:")
    for name, script, out in (
        ("follower", FOLLOWER_ANALYSIS, "twitter/follower_counts"),
        ("two-hop", TWO_HOP_ANALYSIS, "twitter/two_hop_pairs"),
    ):
        result = controller.run_assured(script)
        print(
            f"  {name:<9} assured={result.assured} "
            f"latency={result.latency:.2f}s records={len(result.outputs[out])}"
        )


if __name__ == "__main__":
    main()
