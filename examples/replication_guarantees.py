#!/usr/bin/env python3
"""Variable replication (paper §3.3): what each degree buys you.

The client chooses r by confidence level:

* r = f+1  — *optimistic*: safe (never commits a wrong answer) but may
  need reruns to get one;
* r = 2f+1 — correct result guaranteed if nobody omits;
* r = 3f+1 — correct result under any Byzantine mix.

This example runs the follower analysis at all three degrees against a
commission-faulty node and against an omission-faulty (silently hanging)
node, and prints attempts and latency for each combination.

Run:  python examples/replication_guarantees.py
"""

from repro import ClusterBFTConfig, ClusterConfig, ClusterBFTController, SystemConfig
from repro.common.config import (
    GUARANTEE_FULL_BFT,
    GUARANTEE_NO_OMISSION,
    GUARANTEE_OPTIMISTIC,
    replication_for_guarantee,
)
from repro.faults import single_commission, single_omission
from repro.workloads import FOLLOWER_ANALYSIS, follower_edges

GUARANTEES = (GUARANTEE_OPTIMISTIC, GUARANTEE_NO_OMISSION, GUARANTEE_FULL_BFT)
F = 1


def run(guarantee: str, fault_plan, records):
    replication = replication_for_guarantee(F, guarantee)
    config = SystemConfig(
        cluster=ClusterConfig(num_nodes=24, slots_per_node=3, heartbeat_period=0.2),
        bft=ClusterBFTConfig(
            f=F,
            replication=replication,
            verification_points=1,
            verifier_timeout=15.0,
            max_reruns=4,
        ),
    )
    controller = ClusterBFTController(
        config, fault_plan=fault_plan, block_bytes=128 * 1024
    )
    controller.load_input("twitter/followers", records)
    result = controller.run_assured(FOLLOWER_ANALYSIS)
    return replication, result


def main() -> None:
    records = follower_edges(20_000)

    # Ground truth from a clean unreplicated run.
    clean = ClusterBFTController(SystemConfig(), block_bytes=128 * 1024)
    clean.load_input("twitter/followers", records)
    truth = clean.run_plain(FOLLOWER_ANALYSIS).outputs

    scenarios = {
        "commission node": single_commission("node_0000"),
        "omission node": single_omission("node_0000"),
    }
    header = f"{'scenario':<18}{'guarantee':<14}{'r':>3}{'attempts':>9}{'latency':>9}  correct"
    print(header)
    print("-" * len(header))
    for name, plan in scenarios.items():
        for guarantee in GUARANTEES:
            replication, result = run(guarantee, plan, records)
            correct = result.assured and result.outputs == truth
            print(
                f"{name:<18}{guarantee:<14}{replication:>3}"
                f"{result.attempts:>9}{result.latency:>9.2f}  {correct}"
            )
    print(
        "\nAll degrees stay *safe* (no wrong answer is ever committed); "
        "smaller r simply pays with reruns when the fault strikes."
    )


if __name__ == "__main__":
    main()
